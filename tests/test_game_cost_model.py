"""Tests for the decoupled computation/communication cost model."""

import numpy as np
import pytest

from repro.game import (
    ClientPopulation,
    ServerProblem,
    cost_parameters_from_testbed,
    decoupled_costs,
    solve_cpl_game,
)
from repro.simulation import (
    DeviceProfile,
    SharedMediumNetwork,
    TestbedRuntime,
    build_testbed,
)


@pytest.fixture()
def runtime():
    return build_testbed(
        num_clients=6, num_params=650, local_steps=20, batch_size=24, rng=0
    )


class TestDecoupledCosts:
    def test_one_entry_per_device(self, runtime):
        costs = decoupled_costs(runtime)
        assert len(costs) == 6
        assert [cost.client_id for cost in costs] == list(range(6))

    def test_components_positive(self, runtime):
        for cost in decoupled_costs(runtime):
            assert cost.computation > 0
            assert cost.communication > 0
            assert cost.total == pytest.approx(
                cost.computation + cost.communication
            )

    def test_communication_share_in_unit_interval(self, runtime):
        for cost in decoupled_costs(runtime):
            assert 0 < cost.communication_share < 1

    def test_slower_device_higher_compute_cost(self):
        fast = DeviceProfile(0, 4e8, 1e-4, 30e6, 60e6)
        slow = DeviceProfile(1, 1e8, 1e-4, 30e6, 60e6)
        runtime = TestbedRuntime(
            devices=[fast, slow],
            network=SharedMediumNetwork(),
            num_params=650,
            local_steps=20,
            batch_size=24,
        )
        costs = decoupled_costs(runtime)
        assert costs[1].computation > costs[0].computation

    def test_energy_price_scales_linearly(self, runtime):
        cheap = decoupled_costs(runtime, energy_price=1.0)
        expensive = decoupled_costs(runtime, energy_price=3.0)
        assert expensive[0].total == pytest.approx(3 * cheap[0].total)

    def test_radio_power_affects_only_communication(self, runtime):
        base = decoupled_costs(runtime, radio_watts=1.0)
        loud = decoupled_costs(runtime, radio_watts=2.0)
        assert loud[0].communication == pytest.approx(
            2 * base[0].communication
        )
        assert loud[0].computation == pytest.approx(base[0].computation)


class TestCostParametersFromTestbed:
    def test_shape_and_positivity(self, runtime):
        params = cost_parameters_from_testbed(runtime, num_rounds=100)
        assert params.shape == (6,)
        assert np.all(params > 0)

    def test_scales_with_horizon(self, runtime):
        short = cost_parameters_from_testbed(runtime, num_rounds=50)
        long = cost_parameters_from_testbed(runtime, num_rounds=200)
        assert np.allclose(long, 4 * short)

    def test_markup_applied(self, runtime):
        base = cost_parameters_from_testbed(runtime, num_rounds=100)
        marked = cost_parameters_from_testbed(
            runtime, num_rounds=100, opportunity_markup=2.5
        )
        assert np.allclose(marked, 2.5 * base)

    def test_invalid_rounds_rejected(self, runtime):
        with pytest.raises(ValueError):
            cost_parameters_from_testbed(runtime, num_rounds=0)

    def test_usable_in_cpl_game(self, runtime):
        """The derived costs plug straight into the game and solve."""
        rng = np.random.default_rng(0)
        costs = cost_parameters_from_testbed(
            runtime, num_rounds=100, energy_price=50.0
        )
        sizes = rng.uniform(1, 10, size=6)
        population = ClientPopulation(
            weights=sizes / sizes.sum(),
            gradient_bounds=rng.uniform(1, 4, size=6),
            costs=costs,
            values=rng.exponential(5.0, size=6),
            q_max=np.ones(6),
        )
        problem = ServerProblem(
            population=population,
            alpha=1_000.0,
            num_rounds=100,
            budget=float(costs.sum() / 10),
        )
        equilibrium = solve_cpl_game(problem)
        assert equilibrium.spending <= problem.budget * (1 + 1e-6)
        assert np.all(equilibrium.q > 0)
