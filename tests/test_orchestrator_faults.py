"""Fault-tolerance tests for the experiment orchestrator.

The ISSUE-6 contract: injected worker crashes and stragglers are retried
with backoff and the graph completes **bit-identical** to a failure-free
run; an exhausted retry budget raises :class:`GraphFailure` carrying the
structured :class:`GraphReport`; result-store write failures surface a
clear :class:`ResultStoreError` (with the orphaned temp file removed) and
never kill a graph that already holds the computed result; and a
``KeyboardInterrupt`` mid-graph leaves no worker processes behind
(subprocess regression test).
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import textwrap
from pathlib import Path

import numpy as np
import pytest

from repro import faults
from repro.experiments import (
    SCALES,
    SETUP1,
    apply_scale,
    prepare_setup,
    run_pricing_comparison,
)
from repro.experiments.orchestrator import (
    ExperimentOrchestrator,
    GraphFailure,
    GraphReport,
    JobNode,
    ResultStore,
    ResultStoreError,
    TrainJob,
    job_key,
)
from repro.faults import FaultPlan
from repro.game import UniformPricing


@pytest.fixture(scope="module")
def prepared():
    scale = SCALES["ci"]
    config = apply_scale(SETUP1, scale)
    return prepare_setup(config, scale=scale, seed=11)


@pytest.fixture(autouse=True)
def _no_leaked_plan():
    faults.clear()
    yield
    faults.clear()


def _train_nodes(prepared, seeds=(0, 1)):
    q = tuple(float(v) for v in np.full(prepared.config.num_clients, 0.5))
    return [
        JobNode(
            name=f"train-{seed}",
            build=lambda results, s=seed: TrainJob(q=q, seed=s),
        )
        for seed in seeds
    ]


def _records(results):
    return {name: history.records for name, history in results.items()}


class TestCrashRetry:
    def test_injected_crashes_retry_and_match_serial(self, prepared):
        nodes = _train_nodes(prepared)
        serial = ExperimentOrchestrator(jobs=1).run_graph(prepared, nodes)
        plan = FaultPlan(
            crash_probability=1.0, crash_attempts=1, crash_kinds=("train",)
        )
        orchestrator = ExperimentOrchestrator(
            jobs=2, fault_plan=plan, max_retries=2, retry_base_delay=0.05
        )
        chaotic = orchestrator.run_graph(prepared, nodes)
        assert _records(chaotic) == _records(serial)
        report = orchestrator.last_report
        assert report is not None
        assert report.crashes >= 2  # every attempt-0 execution died
        assert report.retries >= 2
        assert report.submitted >= 4  # two jobs, each at least twice
        assert any(e["event"] == "crash" for e in report.events)
        assert any(e["event"] == "retry" for e in report.events)

    def test_exhausted_budget_raises_graph_failure(self, prepared):
        # Crashes fire on every attempt (attempts gate far above budget),
        # so the retry budget must run out deterministically.
        plan = FaultPlan(crash_probability=1.0, crash_attempts=100)
        orchestrator = ExperimentOrchestrator(
            jobs=2, fault_plan=plan, max_retries=1, retry_base_delay=0.05
        )
        nodes = _train_nodes(prepared, seeds=(0,))
        with pytest.raises(GraphFailure, match="retry budget") as caught:
            orchestrator.run_graph(prepared, nodes)
        report = caught.value.report
        assert report is orchestrator.last_report
        assert [e["event"] for e in report.events] == [
            "crash", "retry", "crash", "exhausted"
        ]
        assert report.failures[-1]["event"] == "exhausted"

    def test_worker_error_is_retried_not_fatal(self, prepared, tmp_path):
        """A job raising an ordinary exception (not a dead worker) also
        consumes the retry budget and surfaces in the report."""
        orchestrator = ExperimentOrchestrator(
            jobs=2, max_retries=0, retry_base_delay=0.05
        )
        q = tuple([float("nan")] * prepared.config.num_clients)
        bad = [JobNode(name="bad", build=lambda r: TrainJob(q=q, seed=0))]
        with pytest.raises(GraphFailure) as caught:
            orchestrator.run_graph(prepared, bad)
        events = [e["event"] for e in caught.value.report.events]
        assert events == ["error", "exhausted"]
        assert "error" in caught.value.report.events[0]


class TestStragglerTimeout:
    def test_straggler_times_out_and_retries_bit_identically(self, prepared):
        nodes = _train_nodes(prepared, seeds=(0,))
        serial = ExperimentOrchestrator(jobs=1).run_graph(prepared, nodes)
        plan = FaultPlan(
            straggler_probability=1.0,
            straggler_seconds=60.0,
            straggler_attempts=1,
        )
        orchestrator = ExperimentOrchestrator(
            jobs=2,
            fault_plan=plan,
            job_timeout=3.0,
            max_retries=2,
            retry_base_delay=0.05,
        )
        result = orchestrator.run_graph(prepared, nodes)
        assert _records(result) == _records(serial)
        report = orchestrator.last_report
        assert report.timeouts >= 1
        assert any(e["event"] == "timeout" for e in report.events)


class TestGraphReport:
    def test_to_doc_shape(self):
        report = GraphReport()
        report.submitted = 3
        report.record("crash", key="abc", nodes=["a"], attempt=0)
        doc = report.to_doc()
        assert doc["format"] == "graph-report/v1"
        assert doc["submitted"] == 3
        assert doc["events"][0]["event"] == "crash"

    def test_failures_excludes_recoveries(self):
        report = GraphReport()
        report.record("crash", key="k", nodes=["a"], attempt=0)
        report.record("retry", key="k", nodes=["a"], attempt=1, delay=0.1)
        report.record("store-error", key="k", error="disk full")
        assert [e["event"] for e in report.failures] == ["crash"]


class TestStoreFailures:
    def _payload(self):
        return {
            "format": "history/v1", "round_index": [], "sim_time": [],
            "num_participants": [], "step_size": [], "global_loss": [],
            "test_loss": [], "test_accuracy": [], "participants": [],
        }

    @pytest.mark.parametrize(
        "plan",
        [
            FaultPlan(store_write_failures=1),
            FaultPlan(store_replace_failures=1),
        ],
        ids=["write", "replace"],
    )
    def test_put_failure_is_actionable_and_leaves_no_orphan(
        self, prepared, tmp_path, plan
    ):
        store = ResultStore(tmp_path / "cache")
        spec = TrainJob(
            q=tuple([0.5] * prepared.config.num_clients), seed=0
        )
        key = job_key(prepared, spec)
        with faults.fault_scope(plan):
            with pytest.raises(ResultStoreError, match="free space"):
                store.put(key, {}, spec.kind, self._payload())
        assert store.stats()["orphaned_tmp"] == 0
        assert store.stats()["entries"] == 0
        # The failure is transient (budget spent): the next put lands.
        store.put(key, {}, spec.kind, self._payload())
        assert store.stats()["entries"] == 1

    @pytest.mark.parametrize("jobs", [1, 2], ids=["serial", "parallel"])
    def test_store_failure_does_not_kill_the_graph(
        self, prepared, tmp_path, jobs
    ):
        """The computed result is already in hand when persisting fails;
        losing the memoization must cost a warning, not the run."""
        nodes = _train_nodes(prepared, seeds=(0,))
        reference = ExperimentOrchestrator(jobs=1).run_graph(prepared, nodes)
        orchestrator = ExperimentOrchestrator(
            jobs=jobs, cache_dir=tmp_path / "cache"
        )
        with faults.fault_scope(FaultPlan(store_write_failures=10)):
            results = orchestrator.run_graph(prepared, nodes)
        assert _records(results) == _records(reference)
        if jobs > 1:
            events = [e["event"] for e in orchestrator.last_report.events]
            assert "store-error" in events


class TestCheckpointedJobs:
    def test_checkpoint_knobs_stay_out_of_cache_keys(self, prepared):
        plain = TrainJob(q=(0.5, 0.5), seed=0)
        knobbed = TrainJob(
            q=(0.5, 0.5), seed=0, checkpoint_dir="/tmp/ck",
            checkpoint_every=3, resume=True,
        )
        assert plain.key_fields() == knobbed.key_fields()
        assert job_key(prepared, plain) == job_key(prepared, knobbed)

    def test_checkpointed_comparison_matches_plain(self, prepared, tmp_path):
        plain = run_pricing_comparison(
            prepared, repeats=1, schemes=[UniformPricing()]
        )
        orchestrator = ExperimentOrchestrator(jobs=2).with_checkpointing(
            tmp_path / "ckpt", every=7
        )
        checkpointed = run_pricing_comparison(
            prepared, repeats=1, schemes=[UniformPricing()],
            orchestrator=orchestrator,
        )
        assert [h.records for h in plain["uniform"].histories] == [
            h.records for h in checkpointed["uniform"].histories
        ]
        # Each train job checkpointed into its own key-derived subdir.
        subdirs = list(Path(tmp_path / "ckpt").glob("*/round-*.json"))
        assert subdirs

    def test_with_checkpointing_validates(self, tmp_path):
        with pytest.raises(ValueError, match="every"):
            ExperimentOrchestrator(jobs=1).with_checkpointing(
                tmp_path, every=0
            )

    def test_orchestrator_validates_fault_knobs(self):
        with pytest.raises(ValueError, match="job_timeout"):
            ExperimentOrchestrator(jobs=2, job_timeout=0.0)
        with pytest.raises(ValueError, match="max_retries"):
            ExperimentOrchestrator(jobs=2, max_retries=-1)
        with pytest.raises(ValueError, match="retry_base_delay"):
            ExperimentOrchestrator(jobs=2, retry_base_delay=-0.5)

    def test_retry_delay_backoff_is_bounded_and_deterministic(self):
        orchestrator = ExperimentOrchestrator(
            jobs=2, retry_base_delay=0.5, retry_seed=3
        )
        first = orchestrator._retry_delay("somekey", 1)
        assert first == orchestrator._retry_delay("somekey", 1)
        second = orchestrator._retry_delay("somekey", 2)
        # Exponential growth with at most 25% jitter on top.
        assert 0.5 <= first <= 0.5 * 1.25
        assert 1.0 <= second <= 1.0 * 1.25
        huge = orchestrator._retry_delay("somekey", 30)
        assert huge <= orchestrator.RETRY_MAX_DELAY * 1.25


INTERRUPT_SCRIPT = textwrap.dedent(
    """
    import multiprocessing
    import threading
    import time

    import numpy as np

    from repro.experiments import SCALES, SETUP1, apply_scale, prepare_setup
    from repro.experiments.orchestrator import (
        ExperimentOrchestrator, JobNode, TrainJob,
    )
    from repro.faults import FaultPlan

    scale = SCALES["ci"]
    prepared = prepare_setup(
        apply_scale(SETUP1, scale), scale=scale, seed=11
    )
    q = tuple(float(v) for v in np.full(prepared.config.num_clients, 0.5))
    # Every job stalls for minutes, guaranteeing the SIGINT lands while
    # workers are busy.
    plan = FaultPlan(
        straggler_probability=1.0,
        straggler_seconds=300.0,
        straggler_attempts=10,
    )
    orchestrator = ExperimentOrchestrator(jobs=2, fault_plan=plan)

    def announce_workers():
        while not multiprocessing.active_children():
            time.sleep(0.05)
        print("WORKERS", flush=True)

    threading.Thread(target=announce_workers, daemon=True).start()
    nodes = [
        JobNode(name="a", build=lambda r: TrainJob(q=q, seed=0)),
        JobNode(name="b", build=lambda r: TrainJob(q=q, seed=1)),
    ]
    try:
        orchestrator.run_graph(prepared, nodes)
        print("FINISHED", flush=True)
    except KeyboardInterrupt:
        deadline = time.time() + 15
        while multiprocessing.active_children() and time.time() < deadline:
            time.sleep(0.1)
        leftovers = multiprocessing.active_children()
        print("CLEAN" if not leftovers else f"LEAKED {leftovers}", flush=True)
    """
)


class TestKeyboardInterrupt:
    def test_interrupt_mid_graph_leaves_no_workers(self, tmp_path):
        """SIGINT while jobs are inflight must tear the pool down in the
        finally path — no orphaned worker processes survive."""
        script = tmp_path / "interrupt_run.py"
        script.write_text(INTERRUPT_SCRIPT)
        env = dict(os.environ)
        src = str(Path(__file__).resolve().parents[1] / "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        child = subprocess.Popen(
            [sys.executable, str(script)],
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
        )
        try:
            for line in child.stdout:
                if "WORKERS" in line:
                    break
            else:
                pytest.fail("child never started pool workers")
            child.send_signal(signal.SIGINT)
            out, err = child.communicate(timeout=120)
        finally:
            if child.poll() is None:
                child.kill()
                child.communicate()
        assert "CLEAN" in out, f"stdout={out!r} stderr={err!r}"
        assert "LEAKED" not in out
