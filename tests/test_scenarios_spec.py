"""Tests for scenario specs: round-trips, fingerprints, and the registry."""

import json
import subprocess
import sys

import pytest

from repro.fl import ParticipationSpec
from repro.scenarios import (
    PopulationSpec,
    ScenarioSpec,
    get_scenario,
    list_scenarios,
    register_scenario,
    unregister_scenario,
)

FULLY_CUSTOM = ScenarioSpec(
    name="custom",
    description="everything non-default",
    setup="setup2",
    population=PopulationSpec(
        num_clients=123,
        cost_factor=0.5,
        value_factor=3.0,
        budget_factor=2.0,
        heterogeneity=1.5,
        q_max=0.8,
    ),
    participation=ParticipationSpec(kind="correlated", correlation=0.7),
    train=False,
    tags=("a", "b"),
)


class TestRoundTrip:
    @pytest.mark.parametrize(
        "spec",
        [
            ScenarioSpec(name="plain"),
            FULLY_CUSTOM,
            ScenarioSpec(
                name="intermittent",
                participation=ParticipationSpec(
                    kind="intermittent", on_to_off=0.15, off_to_on=0.45
                ),
            ),
        ],
        ids=lambda spec: spec.name,
    )
    def test_spec_json_spec_is_lossless(self, spec):
        through_json = json.loads(json.dumps(spec.to_doc()))
        assert ScenarioSpec.from_doc(through_json) == spec

    def test_from_doc_rejects_wrong_format(self):
        with pytest.raises(ValueError, match="not a scenario document"):
            ScenarioSpec.from_doc({"format": "outcome/v1"})

    def test_participation_spec_round_trip(self):
        spec = ParticipationSpec(kind="intermittent", on_to_off=0.2)
        assert ParticipationSpec.from_doc(spec.to_doc()) == spec

    def test_participation_doc_only_carries_relevant_fields(self):
        # Irrelevant knobs must not leak into cache-key documents.
        assert ParticipationSpec().to_doc() == {"kind": "bernoulli"}
        assert set(
            ParticipationSpec(kind="correlated").to_doc()
        ) == {"kind", "correlation"}

    def test_specs_are_hashable(self):
        assert len({ScenarioSpec(name="plain"), FULLY_CUSTOM}) == 2


class TestFingerprints:
    def test_fingerprint_changes_with_any_field(self):
        base = ScenarioSpec(name="x")
        assert base.fingerprint() != FULLY_CUSTOM.fingerprint()
        assert (
            base.fingerprint()
            != ScenarioSpec(
                name="x", population=PopulationSpec(cost_factor=2.0)
            ).fingerprint()
        )

    def test_population_fingerprint_ignores_labels_and_participation(self):
        a = ScenarioSpec(name="a", description="one")
        b = ScenarioSpec(
            name="b",
            description="two",
            participation=ParticipationSpec(kind="correlated"),
            tags=("t",),
        )
        assert a.population_fingerprint() == b.population_fingerprint()
        assert a.fingerprint() != b.fingerprint()

    def test_population_fingerprint_tracks_the_economy(self):
        a = ScenarioSpec(name="a")
        b = ScenarioSpec(
            name="a", population=PopulationSpec(budget_factor=0.5)
        )
        assert a.population_fingerprint() != b.population_fingerprint()

    def test_fingerprint_is_stable_across_processes(self):
        """The cache-key property: the same spec hashes identically in a
        fresh interpreter."""
        code = (
            "from repro.scenarios import ScenarioSpec, PopulationSpec\n"
            "from repro.fl import ParticipationSpec\n"
            "spec = ScenarioSpec(name='custom', description='everything "
            "non-default', setup='setup2', population=PopulationSpec("
            "num_clients=123, cost_factor=0.5, value_factor=3.0, "
            "budget_factor=2.0, heterogeneity=1.5, q_max=0.8), "
            "participation=ParticipationSpec(kind='correlated', "
            "correlation=0.7), train=False, tags=('a', 'b'))\n"
            "print(spec.fingerprint())\n"
            "print(spec.population_fingerprint())\n"
        )
        result = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True,
            text=True,
            check=True,
        )
        remote_full, remote_population = result.stdout.split()
        assert remote_full == FULLY_CUSTOM.fingerprint()
        assert remote_population == FULLY_CUSTOM.population_fingerprint()


class TestValidation:
    def test_bad_setup_rejected(self):
        with pytest.raises(ValueError, match="unknown setup"):
            ScenarioSpec(name="x", setup="setup9")

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError, match="non-empty"):
            ScenarioSpec(name="")

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"num_clients": 0},
            {"cost_factor": 0.0},
            {"value_factor": -1.0},
            {"budget_factor": -2.0},
            {"heterogeneity": -0.1},
            {"q_max": 1.5},
        ],
    )
    def test_bad_population_rejected(self, kwargs):
        with pytest.raises(ValueError):
            PopulationSpec(**kwargs)

    def test_bad_participation_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown participation kind"):
            ParticipationSpec(kind="psychic")


class TestRegistry:
    def test_builtin_suite_is_complete(self):
        names = [spec.name for spec in list_scenarios()]
        assert len(names) >= 6
        assert names == sorted(names)
        assert "paper-default" in names
        assert "megafleet" in names
        kinds = {spec.participation.kind for spec in list_scenarios()}
        assert {"bernoulli", "correlated", "intermittent"} <= kinds

    def test_paper_default_is_flagged(self):
        assert get_scenario("paper-default").is_paper_default
        assert not get_scenario("megafleet").is_paper_default
        assert not get_scenario("flash-crowd").is_paper_default

    def test_duplicate_registration_rejected(self):
        spec = ScenarioSpec(name="dup-test")
        register_scenario(spec)
        try:
            with pytest.raises(ValueError, match="already registered"):
                register_scenario(spec)
            register_scenario(
                ScenarioSpec(name="dup-test", description="v2"), replace=True
            )
            assert get_scenario("dup-test").description == "v2"
        finally:
            unregister_scenario("dup-test")
        with pytest.raises(KeyError):
            get_scenario("dup-test")
