"""Tests for the incomplete-information (Bayesian) pricing extension."""

import numpy as np
import pytest

from repro.game import (
    OptimalPricing,
    bayesian_outcome,
    expected_profile_prices,
    monte_carlo_prices,
)


class TestExpectedProfilePrices:
    def test_price_vector_shape(self, small_problem):
        prices = expected_profile_prices(
            small_problem, mean_cost=30.0, mean_value=20.0
        )
        assert prices.shape == (8,)

    def test_uses_public_quality_profile(self, small_problem):
        """Clients with higher a_n G_n should still get higher prices even
        though private (c, v) are replaced by their means."""
        prices = expected_profile_prices(
            small_problem, mean_cost=30.0, mean_value=0.0
        )
        quality = small_problem.population.data_quality
        order = np.argsort(quality)
        # Prices must be nondecreasing in quality (same c, v for everyone).
        sorted_prices = prices[order]
        assert np.all(np.diff(sorted_prices) >= -1e-9)


class TestMonteCarloPrices:
    def test_reproducible_with_seed(self, small_problem):
        a = monte_carlo_prices(
            small_problem, mean_cost=30.0, mean_value=20.0,
            num_samples=8, rng=0,
        )
        b = monte_carlo_prices(
            small_problem, mean_cost=30.0, mean_value=20.0,
            num_samples=8, rng=0,
        )
        assert np.array_equal(a, b)

    def test_invalid_sample_count(self, small_problem):
        with pytest.raises(ValueError):
            monte_carlo_prices(
                small_problem, mean_cost=30.0, mean_value=20.0, num_samples=0
            )


class TestBayesianOutcome:
    def test_complete_information_weakly_better(self, small_problem):
        """The value of information: knowing true (c, v) cannot hurt."""
        complete = OptimalPricing().apply(small_problem)
        incomplete = bayesian_outcome(
            small_problem,
            mean_cost=float(small_problem.population.costs.mean()),
            mean_value=float(small_problem.population.values.mean()),
            strategy="monte-carlo",
            num_samples=16,
            rng=1,
        )
        # Compare at equal realized spending is not possible (the Bayesian
        # scheme misses the budget); compare the gap after normalizing: the
        # complete-information gap must be better or equal when the Bayesian
        # scheme spent no more budget.
        if incomplete.spending <= small_problem.budget * (1 + 1e-6):
            assert complete.objective_gap <= incomplete.objective_gap + 1e-9

    def test_realized_spending_reported(self, small_problem):
        outcome = bayesian_outcome(
            small_problem,
            mean_cost=30.0,
            mean_value=20.0,
            strategy="expected-profile",
        )
        assert outcome.scheme == "bayesian-expected-profile"
        assert np.isfinite(outcome.spending)

    def test_unknown_strategy_rejected(self, small_problem):
        with pytest.raises(ValueError, match="strategy"):
            bayesian_outcome(
                small_problem,
                mean_cost=30.0,
                mean_value=20.0,
                strategy="oracle",
            )
