"""Tests for the Synthetic(alpha,beta) and image-like dataset generators."""

import numpy as np
import pytest

from repro.datasets import (
    class_conditional_dataset,
    emnist_like,
    mnist_like,
    synthetic_federated,
)


class TestSyntheticFederated:
    def test_shapes_and_counts(self):
        fed = synthetic_federated(
            num_clients=10, total_samples=1500, dim=20, num_classes=5, rng=0
        )
        assert fed.num_clients == 10
        assert fed.total_samples == 1500
        assert fed.num_features == 20
        assert fed.num_classes == 5

    def test_weights_sum_to_one(self):
        fed = synthetic_federated(num_clients=8, total_samples=800, rng=1)
        assert fed.weights.sum() == pytest.approx(1.0)

    def test_unbalanced_sizes(self):
        fed = synthetic_federated(num_clients=20, total_samples=5000, rng=2)
        assert fed.sizes.max() > 3 * fed.sizes.min()

    def test_heterogeneity_alpha_beta(self):
        # Clients' label marginals should differ far more under (1,1) than
        # under (0,0) (shared model + shared feature distribution).
        het = synthetic_federated(
            num_clients=6, total_samples=3000, alpha=1, beta=1, rng=3
        )
        hom = synthetic_federated(
            num_clients=6, total_samples=3000, alpha=0, beta=0, rng=3
        )

        def label_spread(fed):
            dists = np.stack(
                [
                    shard.class_counts() / len(shard)
                    for shard in fed.client_datasets
                ]
            )
            return float(dists.std(axis=0).sum())

        assert label_spread(het) > label_spread(hom)

    def test_deterministic(self):
        a = synthetic_federated(num_clients=4, total_samples=400, rng=11)
        b = synthetic_federated(num_clients=4, total_samples=400, rng=11)
        assert np.array_equal(
            a.client_datasets[0].features, b.client_datasets[0].features
        )

    def test_test_set_nonempty(self):
        fed = synthetic_federated(num_clients=4, total_samples=400, rng=5)
        assert len(fed.test_dataset) > 0

    def test_negative_alpha_rejected(self):
        with pytest.raises(ValueError):
            synthetic_federated(num_clients=3, alpha=-1, total_samples=300)


class TestClassConditional:
    def test_shapes(self):
        ds = class_conditional_dataset(500, 10, side=8, rng=0)
        assert ds.num_features == 64
        assert len(ds) == 500
        assert ds.num_classes == 10

    def test_classes_separable_by_linear_model(self):
        # With generous separation a ridge-style nearest-prototype rule
        # should beat chance easily; this guards the generator's usefulness.
        ds = class_conditional_dataset(
            2000, 5, side=6, class_separation=4.0, intra_class_noise=0.8, rng=1
        )
        centroids = np.stack(
            [
                ds.features[ds.labels == label].mean(axis=0)
                for label in range(5)
            ]
        )
        distances = (
            np.linalg.norm(
                ds.features[:, None, :] - centroids[None, :, :], axis=2
            )
        )
        accuracy = float(np.mean(distances.argmin(axis=1) == ds.labels))
        assert accuracy > 0.8

    def test_more_noise_harder(self):
        def centroid_accuracy(noise):
            ds = class_conditional_dataset(
                1500, 8, class_separation=2.0, intra_class_noise=noise, rng=2
            )
            centroids = np.stack(
                [
                    ds.features[ds.labels == label].mean(axis=0)
                    for label in range(8)
                ]
            )
            distances = np.linalg.norm(
                ds.features[:, None, :] - centroids[None, :, :], axis=2
            )
            return float(np.mean(distances.argmin(axis=1) == ds.labels))

        assert centroid_accuracy(0.5) > centroid_accuracy(3.0)


class TestImageLikeFederations:
    def test_mnist_like_statistics(self):
        fed = mnist_like(num_clients=10, total_samples=2000, rng=0)
        assert fed.num_classes == 10
        assert fed.num_clients == 10
        for shard in fed.client_datasets:
            assert 1 <= len(shard.classes_present()) <= 6

    def test_emnist_like_statistics(self):
        fed = emnist_like(num_clients=10, total_samples=3000, rng=0)
        assert fed.num_classes == 26
        for shard in fed.client_datasets:
            assert 1 <= len(shard.classes_present()) <= 10

    def test_default_sample_counts_match_paper(self):
        fed = mnist_like(num_clients=5, rng=1)
        # Train + test together equal the paper's subsample count.
        assert fed.total_samples + len(fed.test_dataset) == 14_463

    def test_summary_keys(self):
        fed = mnist_like(num_clients=5, total_samples=1000, rng=2)
        summary = fed.summary()
        assert summary["num_clients"] == 5
        assert summary["total_samples"] + summary["test_samples"] == 1000
