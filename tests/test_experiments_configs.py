"""Tests for setup configs and scale profiles."""

import pytest

from repro.experiments import (
    SCALES,
    SETUP1,
    SETUP2,
    SETUP3,
    SETUPS,
    apply_scale,
    resolve_scale,
    table1_rows,
)


class TestTable1:
    """The Table-I parameters must match the paper exactly."""

    def test_setup1(self):
        assert SETUP1.budget == 200.0
        assert SETUP1.mean_cost == 50.0
        assert SETUP1.mean_value == 4_000.0
        assert SETUP1.dataset == "synthetic"
        assert SETUP1.total_samples == 22_377

    def test_setup2(self):
        assert SETUP2.budget == 40.0
        assert SETUP2.mean_cost == 20.0
        assert SETUP2.mean_value == 30_000.0
        assert SETUP2.dataset == "mnist"
        assert SETUP2.total_samples == 14_463

    def test_setup3(self):
        assert SETUP3.budget == 500.0
        assert SETUP3.mean_cost == 80.0
        assert SETUP3.mean_value == 10_000.0
        assert SETUP3.dataset == "emnist"
        assert SETUP3.total_samples == 35_155

    def test_shared_protocol_parameters(self):
        for config in SETUPS.values():
            assert config.num_clients == 40
            assert config.num_rounds == 1000
            assert config.local_steps == 100
            assert config.batch_size == 24
            assert config.initial_lr == 0.1
            assert config.lr_decay == 0.996
            assert config.q_max == 1.0
            assert config.repeats == 20

    def test_table1_rows(self):
        rows = table1_rows()
        assert len(rows) == 3
        assert rows[0][2] == 200.0  # setup1 budget
        assert rows[1][4] == 30_000.0  # setup2 mean value


class TestScaleProfiles:
    def test_all_profiles_present(self):
        assert set(SCALES) == {"ci", "bench", "paper"}

    def test_paper_profile_matches_paper(self):
        paper = SCALES["paper"]
        assert paper.num_clients == 40
        assert paper.num_rounds == 1000
        assert paper.local_steps == 100
        assert paper.repeats == 20

    def test_resolve_from_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "ci")
        assert resolve_scale().name == "ci"

    def test_resolve_explicit_overrides_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "ci")
        assert resolve_scale("bench").name == "bench"

    def test_resolve_unknown_rejected(self):
        with pytest.raises(ValueError, match="unknown scale"):
            resolve_scale("warp")

    def test_apply_scale_shrinks_everything(self):
        scaled = apply_scale(SETUP1, SCALES["ci"])
        assert scaled.num_clients == SCALES["ci"].num_clients
        assert scaled.num_rounds == SCALES["ci"].num_rounds
        assert scaled.local_steps == SCALES["ci"].local_steps
        assert scaled.repeats == SCALES["ci"].repeats

    def test_apply_scale_scales_budget_with_fleet(self):
        scaled = apply_scale(SETUP1, SCALES["ci"])
        fraction = SCALES["ci"].num_clients / 40
        assert scaled.budget == pytest.approx(200.0 * fraction)

    def test_apply_scale_preserves_economics(self):
        scaled = apply_scale(SETUP2, SCALES["ci"])
        assert scaled.mean_cost == SETUP2.mean_cost
        assert scaled.mean_value == SETUP2.mean_value

    def test_paper_scale_keeps_dataset_totals(self):
        scaled = apply_scale(SETUP1, SCALES["paper"])
        assert scaled.total_samples == 22_377
        assert scaled.budget == pytest.approx(200.0)
