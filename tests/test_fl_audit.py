"""Tests for participation auditing (moral-hazard detection)."""

import numpy as np
import pytest

from repro.fl import (
    BernoulliParticipation,
    RoundRecord,
    TrainingHistory,
    audit_participation,
    empirical_participation_counts,
)


def _history_from_masks(masks):
    history = TrainingHistory()
    for index, mask in enumerate(masks):
        history.append(
            RoundRecord(
                round_index=index,
                sim_time=float(index),
                num_participants=int(np.sum(mask)),
                step_size=0.1,
                participants=tuple(int(i) for i in np.flatnonzero(mask)),
            )
        )
    return history


def _simulate(promised, actual, rounds, seed=0):
    model = BernoulliParticipation(actual, rng=seed)
    return _history_from_masks(
        [model.sample_round(r) for r in range(rounds)]
    )


class TestEmpiricalCounts:
    def test_counts_masks(self):
        masks = [
            np.array([True, False, True]),
            np.array([False, False, True]),
        ]
        counts = empirical_participation_counts(
            _history_from_masks(masks), 3
        )
        assert counts.tolist() == [1, 0, 2]

    def test_rounds_without_masks_ignored(self):
        history = TrainingHistory()
        history.append(RoundRecord(0, 0.0, 0, 0.1))  # no participants field
        counts = empirical_participation_counts(history, 2)
        assert counts.tolist() == [0, 0]


class TestHonestClientsPass:
    def test_honest_fleet_all_clear(self):
        promised = np.array([0.2, 0.5, 0.8, 0.4])
        history = _simulate(promised, promised, rounds=400, seed=1)
        report = audit_participation(history, promised)
        assert report.all_clear

    def test_false_positive_rate_controlled(self):
        """Across many honest fleets, flags should be rare at z=3."""
        promised = np.full(5, 0.5)
        flagged = 0
        trials = 40
        for seed in range(trials):
            history = _simulate(promised, promised, rounds=200, seed=seed)
            flagged += len(
                audit_participation(history, promised).suspicious_clients
            )
        # 200 client-tests at ~0.3% each: a handful at most.
        assert flagged <= 3


class TestShirkersCaught:
    def test_underparticipating_client_flagged(self):
        promised = np.array([0.6, 0.6, 0.6, 0.6])
        actual = promised.copy()
        actual[2] = 0.2  # takes the payment, rarely shows up
        history = _simulate(promised, actual, rounds=300, seed=2)
        report = audit_participation(history, promised)
        assert 2 in report.suspicious_clients
        assert len(report.suspicious_clients) == 1

    def test_overparticipation_also_flagged(self):
        """Over-showing is flagged too: it breaks unbiasedness symmetrically."""
        promised = np.array([0.3, 0.3, 0.3])
        actual = np.array([0.3, 0.9, 0.3])
        history = _simulate(promised, actual, rounds=300, seed=3)
        report = audit_participation(history, promised)
        assert 1 in report.suspicious_clients

    def test_empirical_q_reported(self):
        promised = np.array([0.5, 0.5])
        history = _simulate(promised, np.array([0.5, 0.1]), rounds=400, seed=4)
        report = audit_participation(history, promised)
        shirker = report.clients[1]
        assert shirker.empirical_q < 0.25


class TestDegeneratePromises:
    def test_promised_one_must_always_show(self):
        promised = np.array([1.0, 0.5])
        masks = [np.array([True, True]), np.array([False, True])]
        report = audit_participation(_history_from_masks(masks), promised)
        assert 0 in report.suspicious_clients

    def test_promised_zero_must_never_show(self):
        promised = np.array([0.0, 0.5])
        masks = [np.array([True, False])]
        report = audit_participation(_history_from_masks(masks), promised)
        assert 0 in report.suspicious_clients

    def test_empty_history_never_flags(self):
        report = audit_participation(
            TrainingHistory(), np.array([0.5, 0.5])
        )
        assert report.all_clear

    def test_invalid_threshold_rejected(self):
        with pytest.raises(ValueError):
            audit_participation(
                TrainingHistory(), np.array([0.5]), z_threshold=0.0
            )


class TestTrainerRecordsParticipants:
    def test_trainer_histories_are_auditable(
        self, small_federated, small_model
    ):
        from repro.fl import FederatedTrainer
        from repro.utils.rng import RngFactory

        q = np.full(small_federated.num_clients, 0.6)
        trainer = FederatedTrainer(
            small_model,
            small_federated,
            BernoulliParticipation(q, rng=7),
            local_steps=2,
            eval_every=10,
            rng_factory=RngFactory(8),
        )
        history = trainer.run(10)
        report = audit_participation(history, q)
        assert report.all_clear  # 10 rounds is far too few to flag honest q
        counts = empirical_participation_counts(
            history, small_federated.num_clients
        )
        assert counts.sum() == sum(
            record.num_participants for record in history.records
        )
