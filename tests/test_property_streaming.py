"""Property tests for the streaming shard provider.

Pins the ISSUE-6 regeneration invariant with Hypothesis: a
:class:`~repro.datasets.streaming.SyntheticShardProvider` returns
**bit-identical** shards under any random access order and any LRU
capacity — including ``cache_shards=0`` (every access regenerates) and
``max_size`` caps that trigger the deterministic size redistribution.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets.streaming import SyntheticShardProvider
from repro.testing.strategies import streaming_federation as _build

NUM_CLIENTS = 8
TOTAL_SAMPLES = 400


@settings(max_examples=25, deadline=None)
@given(
    order=st.lists(
        st.integers(0, NUM_CLIENTS - 1), min_size=1, max_size=40
    ),
    cache_shards=st.integers(0, NUM_CLIENTS + 2),
    max_size=st.one_of(
        st.none(), st.integers(TOTAL_SAMPLES // NUM_CLIENTS + 10, 200)
    ),
)
def test_shards_bit_identical_under_any_access_order(
    order, cache_shards, max_size
):
    """Access order and LRU capacity are invisible: every (re)generated
    shard matches the reference built with an unbounded cache and
    sequential access."""
    reference = _build(NUM_CLIENTS, max_size).provider
    expected = {
        client_id: tuple(
            array.copy() for array in reference.shard_arrays(client_id)
        )
        for client_id in range(NUM_CLIENTS)
    }
    provider = _build(cache_shards, max_size).provider
    built = provider.cache_stats()["regenerations"]
    for client_id in order:
        features, labels = provider.shard_arrays(client_id)
        assert np.array_equal(features, expected[client_id][0])
        assert np.array_equal(labels, expected[client_id][1])
    stats = provider.cache_stats()
    assert stats["cached_shards"] <= max(cache_shards, 0)
    if cache_shards == 0:
        # No cache: every single access regenerated its shard.
        assert stats["regenerations"] - built == len(order)


@settings(max_examples=25, deadline=None)
@given(
    max_size=st.integers(TOTAL_SAMPLES // NUM_CLIENTS + 2, 300),
    order=st.lists(
        st.integers(0, NUM_CLIENTS - 1), min_size=1, max_size=16
    ),
)
def test_capped_sizes_redistribute_exactly(max_size, order):
    """A max_size cap preserves the sample total, bounds every shard, and
    stays a pure function of the seed (bit-identical across builds)."""
    first = _build(4, max_size)
    again = _build(0, max_size)
    assert int(first.sizes.sum()) == TOTAL_SAMPLES
    assert int(first.sizes.max()) <= max_size
    assert np.array_equal(first.sizes, again.sizes)
    for client_id in order:
        a = first.provider.shard_arrays(client_id)
        b = again.provider.shard_arrays(client_id)
        assert np.array_equal(a[0], b[0])
        assert np.array_equal(a[1], b[1])


@settings(max_examples=15, deadline=None)
@given(order=st.lists(st.integers(0, NUM_CLIENTS - 1), min_size=1,
                      max_size=20))
def test_pickled_provider_regenerates_identically(order):
    """Workers receive the provider as a recipe (no arrays); the
    unpickled twin must reproduce every shard bit-for-bit."""
    import pickle

    provider = _build(4, None).provider
    clone = pickle.loads(pickle.dumps(provider))
    assert clone.cache_stats()["cached_shards"] == 0
    for client_id in order:
        a = provider.shard_arrays(client_id)
        b = clone.shard_arrays(client_id)
        assert np.array_equal(a[0], b[0])
        assert np.array_equal(a[1], b[1])


def test_heldout_rows_are_disjoint_and_stable():
    """Held-out rows come from the same full draw as the training rows,
    so accessing them never perturbs training shards."""
    dataset = _build(2, None)
    provider = dataset.provider
    before = tuple(
        array.copy() for array in provider.shard_arrays(0)
    )
    heldout = provider.heldout_shard(0)
    assert len(heldout) == int(provider.test_sizes[0])
    after = provider.shard_arrays(0)
    assert np.array_equal(before[0], after[0])
    assert np.array_equal(before[1], after[1])


def test_zero_test_fraction_provider_has_no_heldout():
    provider = SyntheticShardProvider(
        np.full(4, 20), seed=1, dim=5, num_classes=3, test_fraction=0.0
    )
    with pytest.raises(ValueError, match="held-out"):
        provider.heldout_shard(0)
