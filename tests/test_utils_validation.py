"""Tests for argument validation helpers."""

import numpy as np
import pytest

from repro.utils.validation import (
    check_in_range,
    check_nonnegative,
    check_positive,
    check_probability,
    check_probability_vector,
)


class TestCheckPositive:
    def test_accepts_positive(self):
        assert check_positive(2.5, "x") == 2.5

    @pytest.mark.parametrize("bad", [0, -1, float("nan"), float("inf")])
    def test_rejects(self, bad):
        with pytest.raises(ValueError, match="x"):
            check_positive(bad, "x")


class TestCheckNonnegative:
    def test_accepts_zero(self):
        assert check_nonnegative(0, "x") == 0.0

    @pytest.mark.parametrize("bad", [-0.1, float("nan")])
    def test_rejects(self, bad):
        with pytest.raises(ValueError):
            check_nonnegative(bad, "x")


class TestCheckProbability:
    @pytest.mark.parametrize("ok", [0.0, 0.5, 1.0])
    def test_accepts(self, ok):
        assert check_probability(ok, "p") == ok

    @pytest.mark.parametrize("bad", [-0.01, 1.01, float("nan")])
    def test_rejects(self, bad):
        with pytest.raises(ValueError):
            check_probability(bad, "p")

    def test_zero_disallowed_when_requested(self):
        with pytest.raises(ValueError, match="strictly positive"):
            check_probability(0.0, "p", allow_zero=False)


class TestCheckProbabilityVector:
    def test_sum_need_not_be_one(self):
        result = check_probability_vector([0.9, 0.9, 0.9], "q")
        assert result.sum() == pytest.approx(2.7)

    def test_rejects_out_of_range_entry(self):
        with pytest.raises(ValueError):
            check_probability_vector([0.5, 1.5], "q")

    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="non-empty"):
            check_probability_vector([], "q")

    def test_rejects_2d(self):
        with pytest.raises(ValueError, match="1-D"):
            check_probability_vector(np.ones((2, 2)), "q")

    def test_rejects_zero_when_disallowed(self):
        with pytest.raises(ValueError):
            check_probability_vector([0.2, 0.0], "q", allow_zero=False)

    def test_returns_float_array(self):
        result = check_probability_vector([0, 1], "q")
        assert result.dtype == float


class TestCheckInRange:
    def test_inclusive_bounds(self):
        assert check_in_range(1.0, "x", 1.0, 2.0) == 1.0

    def test_exclusive_bounds_reject_edge(self):
        with pytest.raises(ValueError):
            check_in_range(1.0, "x", 1.0, 2.0, inclusive=False)
