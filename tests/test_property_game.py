"""Property-based tests (hypothesis) for the game layer's invariants.

The scalar strategies and the random-economy generator live in
:mod:`repro.testing.strategies`, shared with the fuzz campaign.
"""

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.game import (
    ClientPopulation,
    best_response,
    best_response_vector,
    inverse_price,
    solve_cpl_game,
    solve_stage1_kkt,
    theorem2_invariant,
)
from repro.testing.strategies import (
    finite_prices as finite_price,
    nonneg_values as nonneg_va,
    positive_costs as positive_cost,
    q_caps as q_cap,
    random_problem as _random_problem,
)


class TestBestResponseProperties:
    @settings(max_examples=80, deadline=None)
    @given(price=finite_price, cost=positive_cost, va=nonneg_va, cap=q_cap)
    def test_response_in_bounds(self, price, cost, va, cap):
        q = best_response(price, cost, va, cap)
        assert 0.0 <= q <= cap + 1e-12

    @settings(max_examples=60, deadline=None)
    @given(price=finite_price, cost=positive_cost, va=nonneg_va, cap=q_cap)
    def test_response_is_local_maximum(self, price, cost, va, cap):
        q = best_response(price, cost, va, cap)

        def utility(x):
            value = price * x - cost * x**2
            if va > 0:
                if x <= 0:
                    return -np.inf
                value -= va / x
            return value

        base = utility(q)
        for delta in (1e-4, -1e-4):
            candidate = q + delta
            if 0 <= candidate <= cap:
                assert utility(candidate) <= base + 1e-9

    @settings(max_examples=40, deadline=None)
    @given(
        cost=positive_cost,
        va=nonneg_va,
        cap=q_cap,
        p1=finite_price,
        p2=finite_price,
    )
    def test_monotone_in_price(self, cost, va, cap, p1, p2):
        lo, hi = min(p1, p2), max(p1, p2)
        assert best_response(lo, cost, va, cap) <= (
            best_response(hi, cost, va, cap) + 1e-9
        )

    @settings(max_examples=40, deadline=None)
    @given(
        price=finite_price,
        cost=positive_cost,
        va=st.floats(min_value=1e-3, max_value=50.0),
        cap=q_cap,
    )
    def test_inverse_price_roundtrip(self, price, cost, va, cap):
        q = best_response(price, cost, va, cap)
        assume(1e-4 < q < cap - 1e-4)  # interior only: inverse is exact there
        population = ClientPopulation(
            weights=np.array([1.0]),
            gradient_bounds=np.array([1.0]),
            costs=np.array([cost]),
            values=np.array([va]),
            q_max=np.array([cap]),
        )
        recovered = inverse_price([q], population, np.array([1.0]))[0]
        assert recovered == pytest.approx(price, rel=1e-4, abs=1e-6)


class TestStageIProperties:
    @settings(max_examples=30, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        budget=st.floats(min_value=0.5, max_value=500.0),
    )
    def test_solution_feasible(self, seed, budget):
        problem = _random_problem(seed, budget)
        result = solve_stage1_kkt(problem)
        assert np.all(result.q > 0)
        assert np.all(result.q <= problem.population.q_max + 1e-9)
        assert result.spending <= problem.budget * (1 + 1e-6) + 1e-6

    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        budget=st.floats(min_value=0.5, max_value=200.0),
    )
    def test_theorem2_invariant_constant(self, seed, budget):
        problem = _random_problem(seed, budget)
        result = solve_stage1_kkt(problem)
        values, interior = theorem2_invariant(problem, result.q)
        inner = values[interior]
        if inner.size >= 2:
            assert np.ptp(inner) <= 1e-4 * max(1.0, abs(inner[0]))

    @settings(max_examples=20, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        budget=st.floats(min_value=1.0, max_value=100.0),
        factor=st.floats(min_value=1.1, max_value=5.0),
    )
    def test_objective_improves_with_budget(self, seed, budget, factor):
        lean = solve_stage1_kkt(_random_problem(seed, budget))
        rich = solve_stage1_kkt(_random_problem(seed, budget * factor))
        assert rich.objective_gap <= lean.objective_gap + 1e-9

    @settings(max_examples=20, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        budget=st.floats(min_value=1.0, max_value=100.0),
    )
    def test_equilibrium_is_fixed_point(self, seed, budget):
        problem = _random_problem(seed, budget)
        equilibrium = solve_cpl_game(problem)
        induced = best_response_vector(
            equilibrium.prices, problem.population, problem.contributions
        )
        assert np.allclose(induced, equilibrium.q, atol=1e-5)

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_equilibrium_beats_uniform_q_allocations(self, seed):
        """No uniform q profile inside the budget beats the SE's surrogate."""
        problem = _random_problem(seed, 50.0)
        equilibrium = solve_cpl_game(problem)
        for level in np.linspace(0.05, 1.0, 12):
            q = np.full(problem.num_clients, level)
            if problem.spending(q) <= problem.budget:
                assert (
                    problem.objective_gap(q)
                    >= equilibrium.objective_gap - 1e-9
                )
