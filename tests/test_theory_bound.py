"""Tests for ProblemConstants and the Theorem-1 convergence bound."""

import numpy as np
import pytest

from repro.theory import ConvergenceBound, ProblemConstants, heterogeneity_term


@pytest.fixture()
def constants():
    return ProblemConstants(
        smoothness=4.0,
        strong_convexity=0.1,
        local_steps=10,
        weights=np.array([0.5, 0.3, 0.2]),
        gradient_bounds=np.array([2.0, 3.0, 1.0]),
        gradient_variances=np.array([0.5, 0.5, 0.5]),
        f_star=0.2,
        f_star_local=np.array([0.1, 0.15, 0.05]),
        initial_distance_sq=4.0,
    )


class TestProblemConstants:
    def test_gamma_formula(self, constants):
        expected = 0.2 - (0.5 * 0.1 + 0.3 * 0.15 + 0.2 * 0.05)
        assert constants.gamma == pytest.approx(expected)

    def test_gamma_zero_without_local_optima(self):
        constants = ProblemConstants(
            smoothness=1.0,
            strong_convexity=0.1,
            local_steps=5,
            weights=np.array([1.0]),
            gradient_bounds=np.array([1.0]),
            gradient_variances=np.array([0.0]),
        )
        assert constants.gamma == 0.0

    def test_data_quality(self, constants):
        assert np.allclose(
            constants.data_quality, [1.0, 0.9, 0.2]
        )

    def test_weights_must_sum_to_one(self):
        with pytest.raises(ValueError, match="sum to 1"):
            ProblemConstants(
                smoothness=1.0,
                strong_convexity=0.1,
                local_steps=5,
                weights=np.array([0.5, 0.2]),
                gradient_bounds=np.array([1.0, 1.0]),
                gradient_variances=np.array([0.0, 0.0]),
            )

    def test_mu_cannot_exceed_l(self):
        with pytest.raises(ValueError, match="exceeds"):
            ProblemConstants(
                smoothness=0.1,
                strong_convexity=1.0,
                local_steps=5,
                weights=np.array([1.0]),
                gradient_bounds=np.array([1.0]),
                gradient_variances=np.array([0.0]),
            )

    def test_array_length_mismatch(self):
        with pytest.raises(ValueError, match="equal length"):
            ProblemConstants(
                smoothness=1.0,
                strong_convexity=0.1,
                local_steps=5,
                weights=np.array([1.0]),
                gradient_bounds=np.array([1.0, 2.0]),
                gradient_variances=np.array([0.0]),
            )


class TestHeterogeneityTerm:
    def test_zero_at_full_participation(self, constants):
        assert heterogeneity_term(
            constants.weights, constants.gradient_bounds, np.ones(3)
        ) == pytest.approx(0.0)

    def test_explodes_as_q_vanishes(self, constants):
        small = heterogeneity_term(
            constants.weights, constants.gradient_bounds, np.full(3, 1e-6)
        )
        assert small > 1e5

    def test_monotone_decreasing_in_q(self, constants):
        values = [
            heterogeneity_term(
                constants.weights, constants.gradient_bounds, np.full(3, q)
            )
            for q in (0.2, 0.4, 0.6, 0.8, 1.0)
        ]
        assert all(a > b for a, b in zip(values, values[1:]))

    def test_rejects_zero_q(self, constants):
        with pytest.raises(ValueError):
            heterogeneity_term(
                constants.weights,
                constants.gradient_bounds,
                np.array([0.5, 0.0, 0.5]),
            )


class TestConvergenceBound:
    def test_analytic_alpha(self, constants):
        bound = ConvergenceBound(constants)
        assert bound.alpha == pytest.approx(8 * 4.0 * 10 / 0.1**2)

    def test_analytic_beta_positive(self, constants):
        assert ConvergenceBound(constants).beta > 0

    def test_beta_components(self, constants):
        bound = ConvergenceBound(constants)
        steps = constants.local_steps
        a0 = float(
            np.sum(constants.weights**2 * constants.gradient_variances)
            + 8 * np.sum(constants.weights * constants.gradient_bounds**2)
            * (steps - 1) ** 2
        )
        expected = (
            2 * 4.0 / (0.1**2 * steps) * a0
            + 12 * 16.0 / (0.1**2 * steps) * constants.gamma
            + 4 * 16.0 / (0.1 * steps) * 4.0
        )
        assert bound.beta == pytest.approx(expected)

    def test_gap_decreases_with_rounds(self, constants):
        bound = ConvergenceBound(constants)
        q = np.full(3, 0.5)
        assert bound.gap(q, 100) > bound.gap(q, 1000)

    def test_gap_decreases_with_participation(self, constants):
        bound = ConvergenceBound(constants)
        assert bound.gap(np.full(3, 0.3), 100) > bound.gap(np.full(3, 0.9), 100)

    def test_full_participation_gap_is_beta_over_r(self, constants):
        bound = ConvergenceBound(constants)
        assert bound.gap(np.ones(3), 50) == pytest.approx(bound.beta / 50)
        assert bound.full_participation_gap(50) == pytest.approx(bound.beta / 50)

    def test_fitted_override(self, constants):
        bound = ConvergenceBound(constants).with_fitted(alpha=2.0, beta=1.0)
        assert bound.alpha == 2.0
        q = np.full(3, 0.5)
        penalty = heterogeneity_term(
            constants.weights, constants.gradient_bounds, q
        )
        assert bound.gap(q, 10) == pytest.approx((2.0 * penalty + 1.0) / 10)

    def test_contribution_coefficients(self, constants):
        bound = ConvergenceBound(constants).with_fitted(alpha=3.0, beta=0.5)
        coefficients = bound.contribution_coefficients(num_rounds=10)
        expected = 3.0 * constants.weights**2 * constants.gradient_bounds**2 / 10
        assert np.allclose(coefficients, expected)

    def test_gap_equals_contribution_decomposition(self, constants):
        """gap = sum_n A_n (1-q_n)/q_n + beta/R must hold exactly."""
        bound = ConvergenceBound(constants)
        q = np.array([0.3, 0.6, 0.9])
        coefficients = bound.contribution_coefficients(200)
        reconstructed = float(
            np.sum(coefficients * (1 - q) / q) + bound.beta / 200
        )
        assert bound.gap(q, 200) == pytest.approx(reconstructed)

    def test_marginal_gap_negative(self, constants):
        bound = ConvergenceBound(constants)
        marginals = bound.marginal_gap(np.full(3, 0.5), 100)
        assert np.all(marginals < 0)

    def test_expected_loss_adds_f_star(self, constants):
        bound = ConvergenceBound(constants)
        q = np.full(3, 0.7)
        assert bound.expected_loss(q, 100) == pytest.approx(
            constants.f_star + bound.gap(q, 100)
        )

    def test_invalid_rounds_rejected(self, constants):
        bound = ConvergenceBound(constants)
        with pytest.raises(ValueError):
            bound.gap(np.ones(3), 0)
