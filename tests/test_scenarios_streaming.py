"""Streaming training scenarios: spec knob, preparation, and end-to-end runs.

The ``streaming`` knob turns a fleet the game layer already handles into a
*trainable* one: a synthetic economy priced on the streaming federation's
actual shard-size weights, trained through chunked vectorized rounds. These
tests pin the spec semantics (document stability, validation), the
preparation invariants (weights tie-in, memoization, bounded shards), and
a small end-to-end run with finite metrics.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import StreamingFederatedDataset
from repro.experiments.runner import run_history
from repro.game import build_mechanism
from repro.scenarios import (
    PopulationSpec,
    ScenarioRunner,
    ScenarioSpec,
    get_scenario,
    nonfinite_metrics,
)

MINI_STREAMING = ScenarioSpec(
    name="mini-streaming",
    description="60-client streaming training scenario for tests",
    population=PopulationSpec(num_clients=60),
    streaming=True,
)


@pytest.fixture(scope="module")
def runner():
    return ScenarioRunner(scale="ci", seed=0)


class TestSpecKnob:
    def test_megafleet_train_is_registered_and_streams(self):
        spec = get_scenario("megafleet-train")
        assert spec.streaming and spec.train
        assert spec.population.num_clients == 10_000
        assert "scale" in spec.tags

    def test_streaming_requires_training(self):
        with pytest.raises(ValueError, match="game-only"):
            ScenarioSpec(name="bad", streaming=True, train=False)

    def test_streaming_requires_synthetic_setup(self):
        with pytest.raises(ValueError, match="synthetic"):
            ScenarioSpec(name="bad", streaming=True, setup="setup2")

    def test_doc_round_trip(self):
        doc = MINI_STREAMING.to_doc()
        assert doc["streaming"] is True
        assert ScenarioSpec.from_doc(doc) == MINI_STREAMING

    def test_non_streaming_docs_are_byte_stable(self):
        """Pre-PR-5 scenario documents must not grow a streaming key."""
        assert "streaming" not in ScenarioSpec(name="plain").to_doc()
        roundtrip = ScenarioSpec.from_doc(ScenarioSpec(name="plain").to_doc())
        assert not roundtrip.streaming

    def test_streaming_forks_the_population_fingerprint(self):
        eager = ScenarioSpec(
            name="a", population=PopulationSpec(num_clients=60)
        )
        streaming = ScenarioSpec(
            name="b",
            population=PopulationSpec(num_clients=60),
            streaming=True,
        )
        assert (
            eager.population_fingerprint()
            != streaming.population_fingerprint()
        )


class TestStreamingPreparation:
    def test_prepared_setup_is_streaming_and_weight_tied(self, runner):
        concrete = runner.prepare(MINI_STREAMING)
        prepared = concrete.prepared
        assert isinstance(prepared.federated, StreamingFederatedDataset)
        # The game prices exactly the federation the trainer aggregates.
        np.testing.assert_array_equal(
            concrete.problem.population.weights, prepared.federated.weights
        )
        assert concrete.config.num_clients == 60

    def test_preparation_is_memoized(self, runner):
        a = runner.prepare(MINI_STREAMING)
        b = runner.prepare(MINI_STREAMING)
        assert a.prepared is b.prepared

    def test_shard_sizes_are_capped(self, runner):
        prepared = runner.prepare(MINI_STREAMING).prepared
        sizes = prepared.federated.sizes
        mean = prepared.federated.total_samples // 60
        assert sizes.max() <= 4 * mean

    def test_run_history_trains_streaming_setups(self, runner):
        prepared = runner.prepare(MINI_STREAMING).prepared
        q = np.full(60, 0.4)
        history = run_history(prepared, q, seed=0)
        assert np.isfinite(history.final_global_loss())
        again = run_history(prepared, q, seed=0, chunk_size=9)
        assert history.records == again.records


class TestStreamingEndToEnd:
    def test_mini_scenario_metrics_are_finite(self, runner):
        mechanisms = [
            build_mechanism("proposed"),
            build_mechanism("fixed-subset"),
        ]
        cells = runner.run(MINI_STREAMING, mechanisms)
        assert nonfinite_metrics(cells) == []
        assert [cell.mechanism for cell in cells] == [
            "proposed",
            "fixed-subset",
        ]
        for cell in cells:
            assert cell.histories, cell.mechanism
        by_name = {cell.mechanism: cell for cell in cells}
        # The biased baseline excludes weight mass; the proposed scheme
        # keeps everyone in the lottery.
        assert by_name["proposed"].metrics["estimator_bias"] == 0.0
        assert by_name["fixed-subset"].metrics["estimator_bias"] > 0.0

    def test_streaming_runs_are_deterministic(self):
        first = ScenarioRunner(scale="ci", seed=0).run(
            MINI_STREAMING, [build_mechanism("proposed")]
        )
        second = ScenarioRunner(scale="ci", seed=0).run(
            MINI_STREAMING, [build_mechanism("proposed")]
        )
        assert first[0].metrics == second[0].metrics
        for a, b in zip(first[0].histories, second[0].histories):
            assert a.records == b.records

    def test_streaming_cells_bit_identical_across_jobs(self, tmp_path):
        """Workers receive the pickled provider (a recipe, not arrays) and
        must regenerate the identical federation."""
        from repro.experiments import ExperimentOrchestrator

        mechanisms = [build_mechanism("proposed")]
        serial = ScenarioRunner(scale="ci", seed=0).run(
            MINI_STREAMING, mechanisms
        )
        parallel = ScenarioRunner(
            scale="ci",
            seed=0,
            orchestrator=ExperimentOrchestrator(
                jobs=2, cache_dir=tmp_path / "store"
            ),
        ).run(MINI_STREAMING, mechanisms)
        assert serial[0].metrics == parallel[0].metrics
        for a, b in zip(serial[0].histories, parallel[0].histories):
            assert a.records == b.records
