"""Tests for the batched model API (the vectorized backend's kernels).

The vectorized FL backend's determinism contract rests on one property:
``batched_gradient`` / ``batched_loss`` over a parameter stack are
**bit-identical** to looping the scalar API over the slices. These tests
pin that property for both library models, the base-class fallback, and
the per-sample loss decomposition the stacked metrics pass uses.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.models import MultinomialLogisticRegression
from repro.models.base import Model
from repro.models.linear import RidgeRegression


@pytest.fixture()
def mlr_batch():
    rng = np.random.default_rng(11)
    model = MultinomialLogisticRegression(7, 4, l2=1e-2)
    stack = rng.normal(size=(6, model.num_params))
    features = rng.normal(size=(6, 13, 7))
    labels = rng.integers(0, 4, size=(6, 13))
    return model, stack, features, labels


@pytest.fixture()
def ridge_batch():
    rng = np.random.default_rng(12)
    model = RidgeRegression(5, l2=1e-3)
    stack = rng.normal(size=(6, model.num_params))
    features = rng.normal(size=(6, 9, 5))
    labels = rng.normal(size=(6, 9))
    return model, stack, features, labels


class TestBatchedBitIdentity:
    def test_mlr_gradient(self, mlr_batch):
        model, stack, features, labels = mlr_batch
        batched = model.batched_gradient(stack, features, labels)
        for k in range(stack.shape[0]):
            scalar = model.gradient(stack[k], features[k], labels[k])
            assert np.array_equal(batched[k], scalar)

    def test_mlr_loss(self, mlr_batch):
        model, stack, features, labels = mlr_batch
        batched = model.batched_loss(stack, features, labels)
        for k in range(stack.shape[0]):
            assert batched[k] == model.loss(stack[k], features[k], labels[k])

    def test_ridge_gradient(self, ridge_batch):
        model, stack, features, labels = ridge_batch
        batched = model.batched_gradient(stack, features, labels)
        for k in range(stack.shape[0]):
            scalar = model.gradient(stack[k], features[k], labels[k])
            assert np.array_equal(batched[k], scalar)

    def test_ridge_loss(self, ridge_batch):
        model, stack, features, labels = ridge_batch
        batched = model.batched_loss(stack, features, labels)
        for k in range(stack.shape[0]):
            assert batched[k] == model.loss(stack[k], features[k], labels[k])

    def test_broadcast_parameter_stack(self, mlr_batch):
        """A repeated-params stack (gradient-norm sampling) matches too."""
        model, stack, features, labels = mlr_batch
        repeated = np.repeat(stack[:1], stack.shape[0], axis=0)
        batched = model.batched_gradient(repeated, features, labels)
        for k in range(stack.shape[0]):
            scalar = model.gradient(stack[0], features[k], labels[k])
            assert np.array_equal(batched[k], scalar)


class TestBaseClassFallback:
    def test_fallback_matches_overridden_kernels(self, mlr_batch):
        model, stack, features, labels = mlr_batch

        class FallbackModel(MultinomialLogisticRegression):
            batched_gradient = Model.batched_gradient
            batched_loss = Model.batched_loss

        fallback = FallbackModel(7, 4, l2=1e-2)
        assert np.array_equal(
            fallback.batched_gradient(stack, features, labels),
            model.batched_gradient(stack, features, labels),
        )
        assert np.array_equal(
            fallback.batched_loss(stack, features, labels),
            model.batched_loss(stack, features, labels),
        )

    def test_stack_shape_validated(self, mlr_batch):
        model, stack, features, labels = mlr_batch
        with pytest.raises(ValueError):
            model.batched_gradient(stack[:, :-1], features, labels)
        with pytest.raises(ValueError):
            model.batched_gradient(stack[0], features, labels)

    def test_base_sample_losses_unimplemented(self):
        class Opaque(Model):
            num_params = 1

            def init_params(self):
                return np.zeros(1)

            def loss(self, params, features, labels):
                return 0.0

            def gradient(self, params, features, labels):
                return np.zeros(1)

            def predict(self, params, features):
                return np.zeros(len(features))

            def smoothness_constants(self, features):
                return 1.0, 1.0

        with pytest.raises(NotImplementedError):
            Opaque().sample_losses(np.zeros(1), np.zeros((2, 1)), np.zeros(2))
        assert Opaque().penalty(np.zeros(1)) == 0.0


class TestSampleLossDecomposition:
    def test_mlr_reconstructs_loss(self, mlr_batch):
        model, stack, features, labels = mlr_batch
        samples = model.sample_losses(stack[0], features[0], labels[0])
        assert samples.shape == (features.shape[1],)
        reconstructed = samples.mean() + model.penalty(stack[0])
        assert reconstructed == model.loss(stack[0], features[0], labels[0])

    def test_ridge_reconstructs_loss(self, ridge_batch):
        model, stack, features, labels = ridge_batch
        samples = model.sample_losses(stack[0], features[0], labels[0])
        reconstructed = samples.mean() + model.penalty(stack[0])
        assert reconstructed == model.loss(stack[0], features[0], labels[0])


class TestRidgeDesignCache:
    def test_same_matrix_reuses_design(self):
        model = RidgeRegression(3)
        features = np.random.default_rng(0).normal(size=(10, 3))
        first = model._design(features)
        assert model._design(features) is first

    def test_distinct_matrices_get_distinct_designs(self):
        model = RidgeRegression(3)
        rng = np.random.default_rng(1)
        a = rng.normal(size=(4, 3))
        b = rng.normal(size=(5, 3))
        design_a, design_b = model._design(a), model._design(b)
        assert np.array_equal(design_a[:, :-1], a)
        assert np.array_equal(design_b[:, :-1], b)
        assert np.all(design_a[:, -1] == 1.0)
        # Both stay cached (LRU capacity is > 2).
        assert model._design(a) is design_a
        assert model._design(b) is design_b

    def test_cache_is_bounded(self):
        model = RidgeRegression(2)
        rng = np.random.default_rng(2)
        matrices = [rng.normal(size=(3, 2)) for _ in range(10)]
        for matrix in matrices:
            model._design(matrix)
        assert len(model._design_cache) == RidgeRegression._DESIGN_CACHE_SIZE

    def test_equal_but_distinct_objects_not_conflated(self):
        """Identity keying: equal contents in a new object recompute."""
        model = RidgeRegression(2)
        a = np.ones((4, 2))
        b = np.ones((4, 2))
        design_a = model._design(a)
        design_b = model._design(b)
        assert design_a is not design_b
        assert np.array_equal(design_a, design_b)
