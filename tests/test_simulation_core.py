"""Tests for the simulated clock, event queue, and device profiles."""

import numpy as np
import pytest

from repro.simulation import (
    DeviceProfile,
    EventQueue,
    SimulatedClock,
    raspberry_pi_fleet,
)


class TestSimulatedClock:
    def test_advance(self):
        clock = SimulatedClock()
        assert clock.advance(1.5) == 1.5
        assert clock.now == 1.5

    def test_negative_advance_rejected(self):
        with pytest.raises(ValueError):
            SimulatedClock().advance(-1)

    def test_wait_until_no_backwards(self):
        clock = SimulatedClock(start=5.0)
        clock.wait_until(3.0)
        assert clock.now == 5.0
        clock.wait_until(7.0)
        assert clock.now == 7.0

    def test_reset(self):
        clock = SimulatedClock()
        clock.advance(4.0)
        clock.reset()
        assert clock.now == 0.0


class TestEventQueue:
    def test_events_fire_in_time_order(self):
        queue = EventQueue()
        fired = []
        queue.schedule(2.0, lambda q: fired.append("b"))
        queue.schedule(1.0, lambda q: fired.append("a"))
        queue.schedule(3.0, lambda q: fired.append("c"))
        queue.run()
        assert fired == ["a", "b", "c"]

    def test_simultaneous_events_fifo(self):
        queue = EventQueue()
        fired = []
        for name in "xyz":
            queue.schedule(1.0, lambda q, n=name: fired.append(n))
        queue.run()
        assert fired == ["x", "y", "z"]

    def test_clock_advances_with_events(self):
        queue = EventQueue()
        seen = []
        queue.schedule(2.5, lambda q: seen.append(q.now))
        queue.run()
        assert seen == [2.5]
        assert queue.now == 2.5

    def test_events_can_schedule_events(self):
        queue = EventQueue()
        fired = []

        def first(q):
            fired.append(("first", q.now))
            q.schedule(1.0, lambda q2: fired.append(("second", q2.now)))

        queue.schedule(1.0, first)
        queue.run()
        assert fired == [("first", 1.0), ("second", 2.0)]

    def test_run_until_stops_early(self):
        queue = EventQueue()
        fired = []
        queue.schedule(1.0, lambda q: fired.append(1))
        queue.schedule(10.0, lambda q: fired.append(2))
        queue.run(until=5.0)
        assert fired == [1]
        assert queue.now == 5.0
        assert queue.pending == 1

    def test_cascade_guard(self):
        queue = EventQueue()

        def loop(q):
            q.schedule(0.1, loop)

        queue.schedule(0.1, loop)
        with pytest.raises(RuntimeError, match="cascade"):
            queue.run(max_events=100)

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            EventQueue().schedule(-1.0, lambda q: None)

    def test_processed_counter(self):
        queue = EventQueue()
        queue.schedule(1.0, lambda q: None)
        queue.run()
        assert queue.processed == 1


class TestDeviceProfiles:
    def test_step_time_scales_with_batch_and_params(self):
        device = DeviceProfile(0, 1e8, 1e-4, 30e6, 60e6)
        small = device.sgd_step_time(batch_size=8, num_params=100)
        large = device.sgd_step_time(batch_size=64, num_params=100)
        assert large > small

    def test_local_update_time_linear_in_steps(self):
        device = DeviceProfile(0, 1e8, 1e-4, 30e6, 60e6)
        t10 = device.local_update_time(10, 24, 500)
        t20 = device.local_update_time(20, 24, 500)
        assert t20 == pytest.approx(2 * t10)

    def test_fleet_size_and_ids(self):
        fleet = raspberry_pi_fleet(10, rng=0)
        assert len(fleet) == 10
        assert [device.device_id for device in fleet] == list(range(10))

    def test_fleet_heterogeneous(self):
        fleet = raspberry_pi_fleet(20, heterogeneity=0.4, rng=1)
        rates = np.array([device.macs_per_second for device in fleet])
        assert rates.std() / rates.mean() > 0.1

    def test_zero_heterogeneity_identical(self):
        fleet = raspberry_pi_fleet(5, heterogeneity=0.0, rng=2)
        rates = {device.macs_per_second for device in fleet}
        assert len(rates) == 1

    def test_fleet_deterministic(self):
        a = raspberry_pi_fleet(5, rng=3)
        b = raspberry_pi_fleet(5, rng=3)
        assert a[0].macs_per_second == b[0].macs_per_second

    def test_invalid_profile_rejected(self):
        with pytest.raises(ValueError):
            DeviceProfile(0, -1e8, 1e-4, 30e6, 60e6)
