"""Tests for the Dataset container."""

import numpy as np
import pytest

from repro.datasets import Dataset, concatenate


def _dataset(n=10, d=3, classes=4, seed=0):
    rng = np.random.default_rng(seed)
    return Dataset(
        features=rng.normal(size=(n, d)),
        labels=rng.integers(0, classes, size=n),
        num_classes=classes,
    )


def test_len_and_dims():
    ds = _dataset(n=7, d=5)
    assert len(ds) == 7
    assert ds.num_features == 5


def test_num_classes_inferred():
    ds = Dataset(features=np.zeros((3, 2)), labels=np.array([0, 2, 1]))
    assert ds.num_classes == 3


def test_labels_out_of_range_rejected():
    with pytest.raises(ValueError, match="labels"):
        Dataset(
            features=np.zeros((2, 2)),
            labels=np.array([0, 5]),
            num_classes=3,
        )


def test_shape_mismatch_rejected():
    with pytest.raises(ValueError, match="sample count"):
        Dataset(features=np.zeros((3, 2)), labels=np.zeros(2, dtype=int))


def test_non_2d_features_rejected():
    with pytest.raises(ValueError, match="2-D"):
        Dataset(features=np.zeros(3), labels=np.zeros(3, dtype=int))


def test_subset_copies():
    ds = _dataset()
    sub = ds.subset([0, 1])
    sub.features[0, 0] = 999.0
    assert ds.features[0, 0] != 999.0


def test_subset_preserves_num_classes():
    ds = _dataset(classes=6)
    assert ds.subset([0]).num_classes == 6


def test_split_sizes():
    ds = _dataset(n=20)
    train, test = ds.split(0.25, rng=1)
    assert len(train) == 15 and len(test) == 5


def test_split_disjoint_and_exhaustive():
    ds = Dataset(
        features=np.arange(20, dtype=float).reshape(10, 2),
        labels=np.zeros(10, dtype=int),
        num_classes=2,
    )
    train, test = ds.split(0.3, rng=2)
    combined = sorted(
        train.features[:, 0].tolist() + test.features[:, 0].tolist()
    )
    assert combined == sorted(ds.features[:, 0].tolist())


def test_split_invalid_fraction():
    with pytest.raises(ValueError):
        _dataset().split(1.0)


def test_shuffled_is_permutation():
    ds = _dataset(n=15)
    shuffled = ds.shuffled(rng=3)
    assert sorted(shuffled.labels.tolist()) == sorted(ds.labels.tolist())


def test_class_counts():
    ds = Dataset(
        features=np.zeros((4, 1)),
        labels=np.array([0, 0, 2, 2]),
        num_classes=3,
    )
    assert ds.class_counts().tolist() == [2, 0, 2]


def test_classes_present():
    ds = Dataset(
        features=np.zeros((3, 1)),
        labels=np.array([2, 0, 2]),
        num_classes=4,
    )
    assert ds.classes_present().tolist() == [0, 2]


def test_concatenate():
    a, b = _dataset(n=4, seed=1), _dataset(n=6, seed=2)
    combined = concatenate([a, b])
    assert len(combined) == 10


def test_concatenate_dim_mismatch():
    with pytest.raises(ValueError, match="dimension"):
        concatenate([_dataset(d=2), _dataset(d=3)])


def test_concatenate_empty_list():
    with pytest.raises(ValueError):
        concatenate([])
