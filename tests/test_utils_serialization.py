"""Tests for JSON serialization of configs and results."""

from dataclasses import dataclass

import numpy as np
import pytest

from repro.utils.serialization import load_json, save_json, to_jsonable


@dataclass
class _Sample:
    name: str
    values: np.ndarray


def test_numpy_scalars_converted():
    assert to_jsonable(np.float64(1.5)) == 1.5
    assert to_jsonable(np.int32(4)) == 4
    assert to_jsonable(np.bool_(True)) is True


def test_numpy_array_converted():
    assert to_jsonable(np.array([1.0, 2.0])) == [1.0, 2.0]


def test_dataclass_converted():
    result = to_jsonable(_Sample(name="a", values=np.array([1, 2])))
    assert result == {"name": "a", "values": [1, 2]}


def test_nested_structures():
    payload = {"rows": [(np.int64(1), {"q": np.array([0.5])})]}
    assert to_jsonable(payload) == {"rows": [[1, {"q": [0.5]}]]}

def test_sets_become_lists():
    assert sorted(to_jsonable({3, 1, 2})) == [1, 2, 3]


def test_unserializable_raises():
    with pytest.raises(TypeError, match="Cannot serialize"):
        to_jsonable(object())


def test_to_dict_hook():
    class WithToDict:
        def to_dict(self):
            return {"k": np.float32(2.0)}

    assert to_jsonable(WithToDict()) == {"k": 2.0}


def test_save_and_load_roundtrip(tmp_path):
    path = tmp_path / "nested" / "result.json"
    save_json({"a": np.arange(3)}, path)
    assert load_json(path) == {"a": [0, 1, 2]}


def test_save_creates_parents(tmp_path):
    path = tmp_path / "x" / "y" / "z.json"
    save_json([1, 2], path)
    assert path.exists()
