"""Tests for the ``python -m repro.experiments`` CLI."""

import json

import pytest

from repro.experiments.cli import main


@pytest.fixture(autouse=True)
def _ci_scale(monkeypatch):
    monkeypatch.setenv("REPRO_SCALE", "ci")


class TestEquilibriumCommand:
    def test_prints_summary(self, capsys):
        code = main(["--setup", "setup1", "equilibrium"])
        assert code == 0
        out = capsys.readouterr().out
        assert "lambda_star" in out
        assert "Per-client equilibrium" in out

    def test_writes_artifact(self, tmp_path, capsys):
        code = main(
            ["--setup", "setup1", "--out", str(tmp_path), "equilibrium"]
        )
        assert code == 0
        payload = json.loads(
            (tmp_path / "equilibrium_setup1.json").read_text()
        )
        from repro.schemas import check_envelope

        check_envelope(payload, "equilibrium-response")
        assert payload["population_fingerprint"]
        assert payload["trace"] is None  # file artifacts are deterministic
        result = payload["result"]
        assert "summary" in result
        equilibrium = result["equilibrium"]
        assert len(equilibrium["q"]) == len(equilibrium["prices"])


class TestTableCommand:
    def test_table5_fast_path(self, capsys, tmp_path):
        code = main(
            ["--out", str(tmp_path), "table", "--id", "5"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Negative-payment clients" in out
        payload = json.loads((tmp_path / "table5.json").read_text())
        assert payload["schema_version"] == "table-rows/v1"
        assert payload["population_fingerprint"]
        rows = payload["result"]["rows"]
        assert len(rows) == 3

    def test_table2_with_training(self, capsys):
        code = main(["table", "--id", "2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "target loss" in out
        assert "savings" in out

    def test_table4(self, capsys):
        code = main(["table", "--id", "4"])
        assert code == 0
        assert "client-utility gain" in capsys.readouterr().out


class TestFigCommand:
    def test_fig4(self, capsys, tmp_path):
        code = main(
            ["--out", str(tmp_path), "fig", "--id", "4", "--repeats", "1"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "final loss" in out
        assert (tmp_path / "fig4_setup1_summary.json").exists()

    def test_fig7_budget_sweep(self, capsys, tmp_path):
        code = main(
            ["--out", str(tmp_path), "fig", "--id", "7", "--repeats", "1"]
        )
        assert code == 0
        assert "Fig. 7 sweep" in capsys.readouterr().out
        assert (tmp_path / "fig7_setup1.csv").exists()


class TestArgumentValidation:
    def test_unknown_setup_rejected(self):
        with pytest.raises(SystemExit):
            main(["--setup", "setup9", "equilibrium"])

    def test_missing_command_rejected(self):
        with pytest.raises(SystemExit):
            main([])

    def test_bad_table_id_rejected(self):
        with pytest.raises(SystemExit):
            main(["table", "--id", "1"])


class TestBackendFlags:
    def test_backend_flag_parses_on_either_side_of_verb(self):
        from repro.experiments.cli import _build_parser

        parser = _build_parser()
        args = parser.parse_args(["--backend", "loop", "fig", "--id", "4"])
        assert args.backend == "loop"
        args = parser.parse_args(["fig", "--id", "4", "--backend", "loop"])
        assert args.backend == "loop"
        args = parser.parse_args(["equilibrium"])
        assert args.backend == "vectorized"

    def test_bench_targets_parse(self):
        from repro.experiments.cli import _build_parser

        parser = _build_parser()
        assert parser.parse_args(["bench"]).target == "orchestrator"
        assert parser.parse_args(["bench", "trainer"]).target == "trainer"

    def test_bench_trainer_smoke(self, tmp_path, capsys):
        code = main(
            ["--scale", "ci", "--out", str(tmp_path), "bench", "trainer"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "bit-identical histories): True" in out
        payload = json.loads((tmp_path / "bench_trainer.json").read_text())
        assert payload["identical"] is True
        assert payload["scale"] == "ci"
        assert set(payload) >= {
            "loop_s", "vectorized_s", "speedup", "mean_participants"
        }


class TestBrokenPipeHandling:
    """The PR-1 quiet-exit contract, extended to the scenario verbs: a verb
    whose stdout consumer disappears (``scenarios list --json | head``)
    must exit quietly — no traceback on stderr, conventional code 1."""

    @staticmethod
    def _run_with_closed_stdout(*argv):
        import os
        import subprocess
        import sys

        env = dict(os.environ, REPRO_SCALE="ci")
        env["PYTHONPATH"] = "src" + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.experiments", *argv],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            env=env,
        )
        # Close the read end before the CLI writes: every flush from then
        # on raises EPIPE inside the verb handler.
        proc.stdout.close()
        stderr = proc.stderr.read().decode()
        proc.stderr.close()
        code = proc.wait()
        return code, stderr

    @pytest.mark.parametrize(
        "argv",
        [
            ("scenarios", "list"),
            ("scenarios", "list", "--json"),
        ],
    )
    def test_scenarios_list_exits_quietly(self, argv):
        code, stderr = self._run_with_closed_stdout(*argv)
        assert "Traceback" not in stderr
        assert "BrokenPipeError" not in stderr
        # 1 when the pipe loss was seen (the overwhelmingly common race
        # outcome), 0 only if the whole write beat the close.
        assert code in (0, 1)

    def test_scenarios_run_exits_quietly(self):
        code, stderr = self._run_with_closed_stdout(
            "scenarios", "run", "--name", "megafleet"
        )
        assert "Traceback" not in stderr
        assert "BrokenPipeError" not in stderr
        assert code in (0, 1)

    def test_programmatic_main_survives_pipe_loss(self, capsys, monkeypatch):
        """main() callers (tests, scripts) get the code-1 contract too."""
        import repro.experiments.cli as cli

        def broken(*args, **kwargs):
            raise BrokenPipeError

        monkeypatch.setattr(cli, "_cmd_scenarios", broken)
        assert cli.main(["scenarios", "list"]) == 1


class TestFaultToleranceFlags:
    def test_flags_parse_on_either_side_of_verb(self, tmp_path):
        from repro.experiments.cli import _build_parser

        parser = _build_parser()
        args = parser.parse_args(
            ["--checkpoint-dir", str(tmp_path), "--checkpoint-every", "5",
             "--resume", "fig", "--id", "4"]
        )
        assert str(args.checkpoint_dir) == str(tmp_path)
        assert args.checkpoint_every == 5
        assert args.resume
        args = parser.parse_args(
            ["table", "--id", "2", "--job-timeout", "30", "--max-retries",
             "4"]
        )
        assert args.job_timeout == 30.0
        assert args.max_retries == 4

    def test_defaults_build_no_orchestrator(self):
        from repro.experiments.cli import _build_parser, _orchestrator

        args = _build_parser().parse_args(["equilibrium"])
        assert _orchestrator(args) is None

    def test_checkpoint_dir_builds_checkpointing_orchestrator(
        self, tmp_path
    ):
        from repro.experiments.cli import _build_parser, _orchestrator

        args = _build_parser().parse_args(
            ["--checkpoint-dir", str(tmp_path), "--checkpoint-every", "3",
             "--resume", "--job-timeout", "60", "--max-retries", "5",
             "equilibrium"]
        )
        orchestrator = _orchestrator(args)
        assert orchestrator is not None
        assert orchestrator.checkpoint_dir == str(tmp_path)
        assert orchestrator.checkpoint_every == 3
        assert orchestrator.resume
        assert orchestrator.job_timeout == 60.0
        assert orchestrator.max_retries == 5

    @pytest.mark.parametrize(
        "argv",
        [
            ["--resume", "equilibrium"],
            ["--checkpoint-dir", "/tmp/x", "--checkpoint-every", "0",
             "equilibrium"],
            ["--job-timeout", "0", "equilibrium"],
            ["--max-retries", "-1", "equilibrium"],
        ],
        ids=["resume-without-dir", "bad-every", "bad-timeout",
             "bad-retries"],
    )
    def test_invalid_fault_flags_rejected(self, argv):
        with pytest.raises(SystemExit):
            main(argv)

    def test_fig4_with_checkpointing_writes_checkpoints(
        self, tmp_path, capsys
    ):
        code = main(
            ["--setup", "setup1", "--out", str(tmp_path / "out"),
             "--checkpoint-dir", str(tmp_path / "ckpt"),
             "--checkpoint-every", "7", "fig", "--id", "4"]
        )
        assert code == 0
        assert list((tmp_path / "ckpt").glob("*/round-*.json"))
