"""The observability contract: traces, metrics, and their validators.

These are the pure-unit halves of the service's observability story: a
:class:`~repro.observability.Trace` must emit contract-conforming
documents where absent stages are *omitted* (never 0.0 — "did the cache
skip the solve?" is a key-presence check), and a
:class:`~repro.observability.MetricsRegistry` must aggregate traces into
the ``metrics-snapshot/v1`` shape under concurrency.
"""

from __future__ import annotations

import threading

import pytest

from repro.observability import (
    PERCENTILES,
    STAGES,
    ContractError,
    MetricsRegistry,
    Trace,
    check_metrics_snapshot,
    check_trace,
)
from repro.observability.metrics import RESERVOIR_SIZE, _percentile


class TestTrace:
    def test_document_conforms_and_omits_unrun_stages(self):
        trace = Trace()
        with trace.stage("parse"):
            pass
        with trace.stage("encode"):
            pass
        doc = check_trace(trace.to_doc())
        assert set(doc["stages"]) == {"parse", "encode"}
        assert "solve" not in doc["stages"]
        assert doc["cache"] is None

    def test_stage_order_is_canonical(self):
        trace = Trace()
        # Enter out of order; the document still lists execution order.
        with trace.stage("encode"):
            pass
        with trace.stage("parse"):
            pass
        assert list(trace.to_doc()["stages"]) == ["parse", "encode"]

    def test_reentering_a_stage_accumulates(self):
        trace = Trace()
        with trace.stage("solve"):
            pass
        first = trace.stages["solve"]
        with trace.stage("solve"):
            pass
        assert trace.stages["solve"] > first

    def test_unknown_stage_rejected_immediately(self):
        with pytest.raises(ValueError, match="unknown stage"):
            with Trace().stage("teardown"):
                pass

    def test_stage_recorded_even_when_the_body_raises(self):
        trace = Trace()
        with pytest.raises(RuntimeError):
            with trace.stage("solve"):
                raise RuntimeError("solver blew up")
        assert "solve" in trace.stages

    def test_mark_cache_and_total(self):
        trace = Trace(trace_id="pinned")
        trace.mark_cache(True)
        assert trace.to_doc()["cache"] == "hit"
        trace.mark_cache(False)
        assert trace.to_doc()["cache"] == "miss"
        assert trace.to_doc()["trace_id"] == "pinned"
        with trace.stage("encode"):
            pass
        assert trace.total_seconds == pytest.approx(
            sum(trace.stages.values())
        )

    def test_fresh_ids_are_unique(self):
        assert Trace().trace_id != Trace().trace_id


class TestCheckTrace:
    @pytest.mark.parametrize(
        "doc, message",
        [
            ("nope", "must be a dict"),
            ({"format": "trace/v2"}, "format"),
            (
                {"format": "trace/v1", "trace_id": "",
                 "stages": {}, "cache": None},
                "trace_id",
            ),
            (
                {"format": "trace/v1", "trace_id": "t",
                 "stages": [], "cache": None},
                "stages must be a dict",
            ),
            (
                {"format": "trace/v1", "trace_id": "t",
                 "stages": {"teardown": 0.1}, "cache": None},
                "unknown stage",
            ),
            (
                {"format": "trace/v1", "trace_id": "t",
                 "stages": {"solve": -1.0}, "cache": None},
                "non-negative",
            ),
            (
                {"format": "trace/v1", "trace_id": "t",
                 "stages": {}, "cache": "warm"},
                "cache",
            ),
        ],
    )
    def test_rejections(self, doc, message):
        with pytest.raises(ContractError, match=message):
            check_trace(doc)


class TestMetricsRegistry:
    def test_snapshot_conforms(self):
        registry = MetricsRegistry()
        trace = Trace()
        with trace.stage("solve"):
            pass
        trace.mark_cache(False)
        registry.observe("POST /v1/price", 200, trace)
        registry.observe("POST /v1/price", 400)
        snapshot = check_metrics_snapshot(registry.snapshot())
        assert snapshot["requests"]["POST /v1/price"] == {
            "200": 1, "400": 1,
        }
        assert snapshot["cache"] == {"hits": 0, "misses": 1}
        quantiles = snapshot["latency"]["POST /v1/price"]["solve"]
        assert quantiles["count"] == 1
        for percentile in PERCENTILES:
            assert quantiles[f"p{percentile}"] >= 0

    def test_snapshot_is_a_deep_copy(self):
        registry = MetricsRegistry()
        registry.observe("GET /v1/health", 200)
        snapshot = registry.snapshot()
        snapshot["requests"]["GET /v1/health"]["200"] = 999
        assert registry.snapshot()["requests"]["GET /v1/health"] == {
            "200": 1,
        }

    def test_reservoir_is_bounded(self):
        registry = MetricsRegistry()
        for _ in range(RESERVOIR_SIZE + 50):
            trace = Trace()
            with trace.stage("encode"):
                pass
            registry.observe("GET /v1/scenarios", 200, trace)
        latency = registry.snapshot()["latency"]["GET /v1/scenarios"]
        assert latency["encode"]["count"] == RESERVOIR_SIZE

    def test_concurrent_observation_is_consistent(self):
        registry = MetricsRegistry()

        def worker():
            for _ in range(100):
                trace = Trace()
                trace.mark_cache(True)
                registry.observe("POST /v1/price", 200, trace)

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        snapshot = registry.snapshot()
        assert snapshot["requests"]["POST /v1/price"]["200"] == 800
        assert snapshot["cache"]["hits"] == 800

    def test_percentile_nearest_rank(self):
        samples = tuple(float(v) for v in range(1, 101))
        assert _percentile(samples, 50) == 50.0
        assert _percentile(samples, 90) == 90.0
        assert _percentile(samples, 99) == 99.0
        assert _percentile((7.0,), 99) == 7.0


class TestCheckMetricsSnapshot:
    @pytest.mark.parametrize(
        "doc, message",
        [
            (None, "must be a dict"),
            ({"requests": {}, "cache": {}}, "missing 'latency'"),
            (
                {"requests": {"e": {"200": -1}},
                 "cache": {"hits": 0, "misses": 0}, "latency": {}},
                "non-negative",
            ),
            (
                {"requests": {}, "cache": {"hits": 0}, "latency": {}},
                "misses",
            ),
            (
                {"requests": {}, "cache": {"hits": 0, "misses": 0},
                 "latency": {"e": {"teardown": {}}}},
                "unknown stage",
            ),
            (
                {"requests": {}, "cache": {"hits": 0, "misses": 0},
                 "latency": {"e": {"solve": {"p50": 0.1}}}},
                "missing p90",
            ),
        ],
    )
    def test_rejections(self, doc, message):
        with pytest.raises(ContractError, match=message):
            check_metrics_snapshot(doc)

    def test_stage_names_are_the_contract(self):
        assert STAGES == ("parse", "cache_lookup", "solve", "encode")
