"""Tests for evaluation metrics and the global objective."""

import numpy as np
import pytest

from repro.datasets import Dataset, FederatedDataset
from repro.models import (
    MultinomialLogisticRegression,
    evaluate,
    global_loss,
    per_client_losses,
)


@pytest.fixture()
def tiny_federation():
    rng = np.random.default_rng(0)
    shards = []
    for size in (30, 60, 10):
        shards.append(
            Dataset(
                features=rng.normal(size=(size, 4)),
                labels=rng.integers(0, 3, size=size),
                num_classes=3,
            )
        )
    test = Dataset(
        features=rng.normal(size=(20, 4)),
        labels=rng.integers(0, 3, size=20),
        num_classes=3,
    )
    return FederatedDataset(client_datasets=shards, test_dataset=test)


@pytest.fixture()
def model():
    return MultinomialLogisticRegression(4, 3, l2=0.01)


def test_evaluate_returns_loss_and_accuracy(tiny_federation, model):
    result = evaluate(
        model, model.init_params(), tiny_federation.test_dataset
    )
    assert result.loss > 0
    assert 0 <= result.accuracy <= 1


def test_global_loss_is_weighted_sum(tiny_federation, model):
    params = np.random.default_rng(1).normal(size=model.num_params)
    weights = tiny_federation.weights
    losses = per_client_losses(model, params, tiny_federation)
    assert global_loss(model, params, tiny_federation) == pytest.approx(
        float(weights @ losses)
    )


def test_global_loss_equals_pooled_loss(tiny_federation, model):
    """With a_n = d_n / D, sum_n a_n F_n(w) is the pooled mean loss.

    This identity is what makes F* computable by pooled training; it must
    hold exactly (up to the shared regularizer, which appears once in each
    F_n and once in the pooled loss).
    """
    params = np.random.default_rng(2).normal(size=model.num_params)
    pooled = tiny_federation.pooled_train()
    assert global_loss(model, params, tiny_federation) == pytest.approx(
        model.dataset_loss(params, pooled)
    )


def test_per_client_losses_shape(tiny_federation, model):
    losses = per_client_losses(
        model, model.init_params(), tiny_federation
    )
    assert losses.shape == (3,)
    assert np.all(losses > 0)


def test_weights_follow_sizes(tiny_federation):
    assert np.allclose(
        tiny_federation.weights, np.array([30, 60, 10]) / 100
    )
