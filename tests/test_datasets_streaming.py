"""Tests for the streaming shard provider (repro.datasets.streaming).

The provider contract under test: any client's shard regenerates
bit-identically from ``(seed, client_id)`` — before or after LRU eviction,
in a fresh provider, or across a pickle round-trip — and the
:class:`StreamingFederatedDataset` is indistinguishable (values-wise) from
its materialized eager twin.
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.datasets import (
    StreamingFederatedDataset,
    SyntheticShardProvider,
    streaming_synthetic_federated,
)


def _provider(**overrides) -> SyntheticShardProvider:
    arguments = dict(
        sizes=np.array([10, 30, 7, 22]),
        seed=11,
        cache_shards=2,
        test_fraction=0.25,
    )
    arguments.update(overrides)
    return SyntheticShardProvider(arguments.pop("sizes"), **arguments)


class TestProviderRegeneration:
    def test_repeated_access_is_bit_identical(self):
        provider = _provider()
        first = provider.shard(1)
        second = provider.shard(1)
        assert np.array_equal(first.features, second.features)
        assert np.array_equal(first.labels, second.labels)

    def test_eviction_is_invisible(self):
        provider = _provider(cache_shards=1)
        reference = {n: provider.shard(n) for n in range(4)}
        before = provider.regenerations
        # Every access now misses the single-entry cache and regenerates.
        for n in range(4):
            shard = provider.shard(n)
            assert np.array_equal(shard.features, reference[n].features)
            assert np.array_equal(shard.labels, reference[n].labels)
        assert provider.regenerations > before

    def test_access_order_is_irrelevant(self):
        forward = _provider(cache_shards=0)
        backward = _provider(cache_shards=0)
        forwards = [forward.shard(n) for n in range(4)]
        backwards = [backward.shard(n) for n in reversed(range(4))][::-1]
        for a, b in zip(forwards, backwards):
            assert np.array_equal(a.features, b.features)

    def test_fresh_provider_agrees(self):
        a, b = _provider(), _provider()
        assert np.array_equal(a.shard(2).features, b.shard(2).features)

    def test_different_seeds_differ(self):
        a, b = _provider(), _provider(seed=12)
        assert not np.array_equal(a.shard(0).features, b.shard(0).features)

    def test_pickle_ships_recipe_not_arrays(self):
        provider = _provider()
        reference = provider.shard(3)
        provider.shard(0)  # warm the cache so there is something to drop
        clone = pickle.loads(pickle.dumps(provider))
        assert clone.cache_stats()["cached_shards"] == 0
        assert np.array_equal(clone.shard(3).features, reference.features)

    def test_lru_respects_capacity(self):
        provider = _provider(cache_shards=2)
        for n in range(4):
            provider.shard(n)
        assert provider.cache_stats()["cached_shards"] <= 2

    def test_heldout_rows_disjoint_from_train(self):
        provider = _provider()
        train = provider.shard(1)
        heldout = provider.heldout_shard(1)
        assert len(train) == 30
        assert len(heldout) == round(30 * 0.25)
        # Train rows are the leading slice of the full draw, so the
        # held-out block never aliases them.
        assert not np.array_equal(
            train.features[: len(heldout)], heldout.features
        )


class TestProviderValidation:
    def test_non_integer_seed_rejected(self):
        with pytest.raises(TypeError, match="integer seed"):
            SyntheticShardProvider(np.array([5, 5]), seed="zero")

    def test_empty_or_zero_sizes_rejected(self):
        with pytest.raises(ValueError, match="non-empty"):
            SyntheticShardProvider(np.array([]), seed=0)
        with pytest.raises(ValueError, match="at least one sample"):
            SyntheticShardProvider(np.array([4, 0]), seed=0)

    def test_client_id_bounds_checked(self):
        provider = _provider()
        with pytest.raises(IndexError):
            provider.shard(4)
        with pytest.raises(IndexError):
            provider.shard(-1)

    def test_no_heldout_rows_without_test_fraction(self):
        provider = _provider(test_fraction=0.0)
        with pytest.raises(ValueError, match="no held-out rows"):
            provider.heldout_shard(0)


class TestStreamingFederatedDataset:
    def test_materialized_twin_is_bit_identical(self):
        federated = streaming_synthetic_federated(
            12, total_samples=300, seed=3, test_clients=5
        )
        eager = federated.materialize()
        assert eager.num_clients == federated.num_clients == 12
        for n in range(12):
            shard = federated.client_shard(n)
            assert np.array_equal(
                shard.features, eager.client_datasets[n].features
            )
            assert np.array_equal(
                shard.labels, eager.client_datasets[n].labels
            )
        assert eager.test_dataset is federated.test_dataset
        assert np.array_equal(eager.sizes, federated.sizes)
        np.testing.assert_allclose(eager.weights, federated.weights)

    def test_lazy_shards_expose_dataset_interface(self):
        federated = streaming_synthetic_federated(
            6, total_samples=120, seed=5, test_clients=2
        )
        shards = federated.client_datasets
        assert len(shards) == 6
        lazy = shards[4]
        assert len(lazy) == federated.sizes[4]
        assert lazy.num_features == 60
        assert lazy.num_classes == 10
        assert lazy.features.shape == (len(lazy), 60)
        assert set(lazy.classes_present()) <= set(range(10))
        with pytest.raises(IndexError):
            shards[6]

    def test_arrays_accessor_materializes_once_without_cache(self):
        """Bulk consumers read shards via arrays(): one regeneration per
        gather even with the LRU disabled, where reading .features and
        .labels separately costs two."""
        federated = streaming_synthetic_federated(
            4, total_samples=80, seed=5, test_clients=2, cache_shards=0
        )
        lazy = federated.client_datasets[1]
        before = federated.provider.regenerations
        lazy.arrays()
        assert federated.provider.regenerations == before + 1
        lazy.features, lazy.labels
        assert federated.provider.regenerations == before + 3

    def test_pooled_train_refuses(self):
        federated = streaming_synthetic_federated(
            4, total_samples=80, seed=5, test_clients=2
        )
        with pytest.raises(RuntimeError, match="materializes every shard"):
            federated.pooled_train()

    def test_test_set_is_bounded_and_deterministic(self):
        a = streaming_synthetic_federated(
            40, total_samples=800, seed=9, test_clients=6
        )
        b = streaming_synthetic_federated(
            40, total_samples=800, seed=9, test_clients=6
        )
        assert len(a.test_client_ids) == 6
        assert np.array_equal(a.test_dataset.features, b.test_dataset.features)
        bigger = streaming_synthetic_federated(
            80, total_samples=1600, seed=9, test_clients=6
        )
        # Doubling the fleet does not grow the test-client count.
        assert len(bigger.test_client_ids) == 6

    def test_builder_rejects_zero_test_fraction(self):
        """The builder's contract includes a global test set, which a zero
        held-out fraction can never assemble — fail up front, not deep in
        heldout_shard."""
        with pytest.raises(ValueError, match="test_fraction"):
            streaming_synthetic_federated(
                4, total_samples=80, seed=1, test_fraction=0.0
            )

    def test_builder_is_a_pure_function_of_the_seed(self):
        a = streaming_synthetic_federated(10, total_samples=200, seed=21)
        b = streaming_synthetic_federated(10, total_samples=200, seed=21)
        assert np.array_equal(a.sizes, b.sizes)
        assert np.array_equal(
            a.client_shard(7).features, b.client_shard(7).features
        )

    def test_pickle_round_trip(self):
        federated = streaming_synthetic_federated(
            8, total_samples=160, seed=2, test_clients=3
        )
        clone = pickle.loads(pickle.dumps(federated))
        assert isinstance(clone, StreamingFederatedDataset)
        assert np.array_equal(
            clone.client_shard(5).features,
            federated.client_shard(5).features,
        )
        assert np.array_equal(
            clone.test_dataset.labels, federated.test_dataset.labels
        )

    def test_summary_reports_metadata_without_materializing(self):
        federated = streaming_synthetic_federated(
            16, total_samples=320, seed=4, test_clients=4
        )
        before = federated.provider.regenerations
        summary = federated.summary()
        assert summary["streaming"] is True
        assert summary["num_clients"] == 16
        assert summary["total_samples"] == 320
        assert federated.provider.regenerations == before
