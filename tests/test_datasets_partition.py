"""Tests for partitioners: power-law sizes, label-limited, Dirichlet, IID."""

import numpy as np
import pytest

from repro.datasets import (
    Dataset,
    dirichlet_partition,
    iid_partition,
    partition_by_label_limit,
    power_law_sizes,
)


def _pool(n=2000, classes=10, seed=0):
    rng = np.random.default_rng(seed)
    return Dataset(
        features=rng.normal(size=(n, 4)),
        labels=rng.integers(0, classes, size=n),
        num_classes=classes,
    )


class TestPowerLawSizes:
    def test_sums_to_total(self):
        sizes = power_law_sizes(10_000, 40, rng=0)
        assert sizes.sum() == 10_000

    def test_respects_min_size(self):
        sizes = power_law_sizes(1000, 20, min_size=10, rng=1)
        assert sizes.min() >= 10

    def test_unbalanced(self):
        sizes = power_law_sizes(10_000, 40, exponent=1.5, rng=2)
        assert sizes.max() > 5 * sizes.min()

    def test_higher_exponent_more_skew(self):
        mild = power_law_sizes(20_000, 30, exponent=0.5, rng=3)
        harsh = power_law_sizes(20_000, 30, exponent=2.5, rng=3)
        assert harsh.max() > mild.max()

    def test_infeasible_total_rejected(self):
        with pytest.raises(ValueError, match="too small"):
            power_law_sizes(10, 20, min_size=8)

    def test_deterministic_with_seed(self):
        assert np.array_equal(
            power_law_sizes(500, 10, rng=9), power_law_sizes(500, 10, rng=9)
        )


class TestLabelLimitPartition:
    def test_sizes_honored(self):
        pool = _pool()
        sizes = np.full(8, 100)
        shards = partition_by_label_limit(
            pool, 8, classes_per_client=2, sizes=sizes, rng=0
        )
        assert [len(shard) for shard in shards] == [100] * 8

    def test_classes_per_client_limited(self):
        pool = _pool()
        shards = partition_by_label_limit(
            pool, 10, classes_per_client=(1, 3), sizes=np.full(10, 50), rng=1
        )
        for shard in shards:
            assert 1 <= len(shard.classes_present()) <= 3

    def test_all_classes_covered_collectively(self):
        pool = _pool(classes=10)
        shards = partition_by_label_limit(
            pool, 12, classes_per_client=(1, 2), sizes=np.full(12, 60), rng=2
        )
        covered = set()
        for shard in shards:
            covered.update(shard.classes_present().tolist())
        assert covered == set(range(10))

    def test_num_classes_preserved_on_shards(self):
        pool = _pool(classes=7)
        shards = partition_by_label_limit(
            pool, 4, classes_per_client=1, sizes=np.full(4, 30), rng=3
        )
        assert all(shard.num_classes == 7 for shard in shards)

    def test_oversubscription_rejected(self):
        pool = _pool(n=100)
        with pytest.raises(ValueError, match="requested"):
            partition_by_label_limit(
                pool, 4, classes_per_client=2, sizes=np.full(4, 50), rng=0
            )

    def test_invalid_class_range_rejected(self):
        pool = _pool(classes=5)
        with pytest.raises(ValueError):
            partition_by_label_limit(
                pool, 4, classes_per_client=(0, 3), sizes=np.full(4, 10)
            )


class TestDirichletPartition:
    def test_partition_exhaustive(self):
        pool = _pool(n=600, classes=5)
        shards = dirichlet_partition(pool, 6, concentration=0.5, rng=0)
        assert sum(len(shard) for shard in shards) == 600

    def test_low_concentration_skews_labels(self):
        pool = _pool(n=4000, classes=5, seed=1)
        skewed = dirichlet_partition(pool, 8, concentration=0.05, rng=1)
        flat = dirichlet_partition(pool, 8, concentration=100.0, rng=1)

        def mean_label_entropy(shards):
            entropies = []
            for shard in shards:
                p = shard.class_counts() / max(len(shard), 1)
                p = p[p > 0]
                entropies.append(float(-(p * np.log(p)).sum()))
            return np.mean(entropies)

        assert mean_label_entropy(skewed) < mean_label_entropy(flat)

    def test_min_size_respected(self):
        pool = _pool(n=1000)
        shards = dirichlet_partition(pool, 5, min_size=5, rng=4)
        assert min(len(shard) for shard in shards) >= 5


class TestIidPartition:
    def test_even_split(self):
        pool = _pool(n=100)
        shards = iid_partition(pool, 4, rng=0)
        assert [len(shard) for shard in shards] == [25, 25, 25, 25]

    def test_custom_sizes(self):
        pool = _pool(n=100)
        shards = iid_partition(pool, 3, sizes=[10, 20, 30], rng=0)
        assert [len(shard) for shard in shards] == [10, 20, 30]

    def test_sizes_exceeding_pool_rejected(self):
        pool = _pool(n=10)
        with pytest.raises(ValueError):
            iid_partition(pool, 2, sizes=[8, 8])
