"""The invariant catalog and the degenerate economies it pins.

Satellite of ISSUE 7: 2,400+ fuzz cases across six seeds surfaced no
genuine violations, so the degenerate corners the generators aim at —
all-equal qualities, cost-floor clients, budgets at zero and exactly at
the feasibility boundary, the fixed-subset K >= 1 fallback — are pinned
here as documented, tested edge-case behavior.
"""

import dataclasses

import numpy as np
import pytest

from repro.fl.participation import ParticipationSpec
from repro.game.client_model import ClientPopulation
from repro.game.mechanisms import MECHANISMS, build_mechanism
from repro.game.server_problem import ServerProblem, solve_stage1_kkt
from repro.testing import (
    INVARIANTS,
    FuzzCase,
    InvariantContext,
    check_case,
    draw_case,
    draw_participation_spec,
    draw_population,
    draw_problem,
    draw_scenario_spec,
    failing_invariants,
    register_invariant,
    shrink_case,
)
from repro.testing.invariants import (
    BUDGETED_MECHANISMS,
    PRICE_MECHANISMS,
)
from repro.testing.strategies import COST_FLOOR
from repro.utils.rng import spawn_rng


def _case_from_problem(problem, mechanism, *, seed=0):
    population = problem.population
    return FuzzCase(
        weights=tuple(float(x) for x in population.weights),
        gradient_bounds=tuple(
            float(x) for x in population.gradient_bounds
        ),
        costs=tuple(float(x) for x in population.costs),
        values=tuple(float(x) for x in population.values),
        q_max=tuple(float(x) for x in population.q_max),
        alpha=problem.alpha,
        num_rounds=problem.num_rounds,
        budget=problem.budget,
        participation=ParticipationSpec(kind="bernoulli"),
        mechanism=mechanism,
        seed=seed,
    )


def _population(**overrides):
    base = dict(
        weights=np.array([0.25, 0.25, 0.25, 0.25]),
        gradient_bounds=np.array([2.0, 2.0, 2.0, 2.0]),
        costs=np.array([5.0, 10.0, 20.0, 40.0]),
        values=np.array([0.0, 1.0, 4.0, 9.0]),
        q_max=np.ones(4),
    )
    base.update(overrides)
    return ClientPopulation(**base)


def _game_reports(problem, mechanism):
    case = _case_from_problem(problem, mechanism)
    names = [
        name
        for name, invariant in INVARIANTS.items()
        if invariant.family in ("game", "estimator", "codec")
    ]
    return check_case(case, names)


class TestRegistry:
    def test_catalog_covers_every_family(self):
        families = {inv.family for inv in INVARIANTS.values()}
        assert families == {"game", "estimator", "codec", "training"}

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_invariant(
                "q-bounds", claim="dup", module="x", family="game"
            )(lambda ctx: [])

    def test_not_applicable_is_neither_pass_nor_fail(self):
        problem = draw_problem(spawn_rng(0, "edge"))
        context = InvariantContext(
            problem, ParticipationSpec(kind="bernoulli"), "random"
        )
        report = INVARIANTS["theorem2-constancy"].run(context)
        assert not report.checked
        assert not report.passed
        assert not report.failed


class TestDegenerateEconomies:
    """The corners the ISSUE names, pinned mechanism by mechanism."""

    def test_starved_budget_every_mechanism(self):
        """B = 0: every budgeted mechanism stays feasible (the proposed
        scheme leans on the value terms, which *pay* the server)."""
        problem = ServerProblem(
            population=_population(),
            alpha=2_000.0,
            num_rounds=100,
            budget=0.0,
        )
        for mechanism in sorted(MECHANISMS):
            failing = failing_invariants(_game_reports(problem, mechanism))
            assert not failing, (mechanism, failing)

    def test_budget_exactly_at_feasibility_boundary(self):
        """B equal to the cap spending: the slack path takes q = q_max
        and spends exactly the budget (within the solver tolerance)."""
        population = _population(values=np.zeros(4))
        probe = ServerProblem(
            population=population, alpha=2_000.0, num_rounds=100, budget=1.0
        )
        cap_spend = float(probe.spending(population.q_max))
        problem = dataclasses.replace(probe, budget=cap_spend)
        result = solve_stage1_kkt(problem)
        assert np.allclose(result.q, population.q_max, atol=1e-6)
        for mechanism in sorted(MECHANISMS):
            failing = failing_invariants(_game_reports(problem, mechanism))
            assert not failing, (mechanism, failing)

    def test_all_equal_qualities(self):
        """Exact ties: equal weights x bounds x costs give a symmetric
        interior optimum — same q for every client."""
        population = _population(
            costs=np.full(4, 12.0), values=np.full(4, 2.0)
        )
        problem = ServerProblem(
            population=population, alpha=2_000.0, num_rounds=100, budget=5.0
        )
        result = solve_stage1_kkt(problem)
        assert np.ptp(result.q) <= 1e-9
        for mechanism in sorted(MECHANISMS):
            failing = failing_invariants(_game_reports(problem, mechanism))
            assert not failing, (mechanism, failing)

    def test_cost_floor_clients_pin_to_cap(self):
        """Near-zero costs: effort is almost free, so any budget pushes
        the floor clients to their caps without breaking feasibility."""
        population = _population(
            costs=np.array([COST_FLOOR, COST_FLOOR, COST_FLOOR, 8.0]),
            values=np.zeros(4),
        )
        problem = ServerProblem(
            population=population, alpha=2_000.0, num_rounds=100, budget=3.0
        )
        result = solve_stage1_kkt(problem)
        assert np.all(result.q[:3] >= 0.999)
        for mechanism in sorted(MECHANISMS):
            failing = failing_invariants(_game_reports(problem, mechanism))
            assert not failing, (mechanism, failing)

    def test_fixed_subset_single_client_fallback_is_exempt(self):
        """A budget no client fits still buys the single cheapest one —
        the documented K >= 1 floor. The overshoot is deliberately
        exempted from budget-feasibility, and the excluded mass is
        exactly the estimator bias."""
        population = _population(values=np.zeros(4))
        problem = ServerProblem(
            population=population,
            alpha=2_000.0,
            num_rounds=100,
            budget=1e-6,
        )
        outcome = build_mechanism("fixed-subset").apply(problem)
        assert int(np.sum(outcome.q > 0)) == 1
        spending = float(
            np.sum(np.maximum(outcome.prices * outcome.q, 0.0))
        )
        assert spending > problem.budget  # the overshoot being exempted
        reports = _game_reports(problem, "fixed-subset")
        assert not failing_invariants(reports)
        # The bias-mass accounting still holds for the biased subset.
        assert reports["estimator-unbiasedness"].passed


class TestInvariantApplicability:
    def test_price_mechanisms_get_fixed_point_checked(self):
        problem = draw_problem(spawn_rng(1, "edge"))
        for mechanism in sorted(MECHANISMS):
            context = InvariantContext(
                problem, ParticipationSpec(kind="bernoulli"), mechanism
            )
            report = INVARIANTS["equilibrium-fixed-point"].run(context)
            assert report.checked == (mechanism in PRICE_MECHANISMS)

    def test_full_mechanism_exempt_from_budget(self):
        problem = draw_problem(spawn_rng(2, "edge"))
        context = InvariantContext(
            problem, ParticipationSpec(kind="bernoulli"), "full"
        )
        assert not INVARIANTS["budget-feasibility"].run(context).checked
        assert "full" not in BUDGETED_MECHANISMS

    def test_solver_exception_becomes_violation(self):
        case = _case_from_problem(
            draw_problem(spawn_rng(3, "edge")), "proposed"
        )
        bad = dataclasses.replace(case, mechanism="no-such-mechanism")
        reports = check_case(bad, ["q-bounds"])
        assert reports["q-bounds"].failed
        assert "ValueError" in reports["q-bounds"].violations[0].message


class TestStrategies:
    def test_draws_are_seed_deterministic(self):
        first = draw_case(spawn_rng(5, "fuzz", "0"), 0)
        second = draw_case(spawn_rng(5, "fuzz", "0"), 0)
        assert first == second
        assert first.fingerprint() == second.fingerprint()

    def test_population_draws_are_valid(self):
        rng = spawn_rng(9, "population")
        for _ in range(50):
            population = draw_population(rng)  # validates on construction
            assert 2 <= population.num_clients <= 12

    def test_participation_draws_cover_every_kind(self):
        rng = spawn_rng(4, "participation")
        kinds = {draw_participation_spec(rng).kind for _ in range(100)}
        assert kinds == set(ParticipationSpec._KINDS)

    def test_scenario_specs_roundtrip(self):
        rng = spawn_rng(6, "scenario")
        for index in range(25):
            spec = draw_scenario_spec(rng, index)
            rebuilt = type(spec).from_doc(spec.to_doc())
            assert rebuilt == spec
            assert rebuilt.fingerprint() == spec.fingerprint()

    def test_case_json_roundtrip(self):
        case = draw_case(spawn_rng(8, "fuzz", "3"), 3)
        assert FuzzCase.from_doc(case.to_doc()) == case


class TestShrinking:
    def test_shrink_preserves_target_failures(self):
        case = draw_case(spawn_rng(12, "fuzz", "0"), 0)
        shrunk, steps = shrink_case(
            case, ["q-bounds"], mutate="q-bounds"
        )
        assert steps > 0
        reports = check_case(shrunk, ["q-bounds"], mutate="q-bounds")
        assert failing_invariants(reports) == ["q-bounds"]
        assert shrunk.num_clients <= case.num_clients
        assert shrunk.scenario is None  # dropped as irrelevant


class TestTrainingInvariants:
    def test_training_family_passes_on_one_case(self):
        """One full train-gated pass: all three bit-identity checks."""
        case = draw_case(spawn_rng(7, "fuzz", "0"), 0)
        names = [
            name
            for name, invariant in INVARIANTS.items()
            if invariant.family == "training"
        ]
        reports = check_case(case, names, train=True)
        for name in names:
            assert reports[name].passed, (
                name,
                reports[name].violations,
            )
