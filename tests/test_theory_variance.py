"""Tests for the Lemma-2 variance bound and empirical validation."""

import numpy as np
import pytest

from repro.fl import ParticipantsOnlyAggregator
from repro.theory import (
    empirical_aggregation_moments,
    full_participation_aggregate,
    lemma2_variance_bound,
)


@pytest.fixture()
def round_setup():
    rng = np.random.default_rng(1)
    num_clients, dim = 5, 8
    global_params = rng.normal(size=dim)
    step, local_steps = 0.05, 4
    # Local params within eta*E*G of the global model so Lemma 2's G-based
    # bound applies with G = max delta / (eta E).
    local_params = {}
    deltas = {}
    for n in range(num_clients):
        delta = rng.normal(size=dim) * 0.1
        local_params[n] = global_params + delta
        deltas[n] = delta
    sizes = rng.integers(20, 80, size=num_clients).astype(float)
    weights = sizes / sizes.sum()
    gradient_bounds = np.array(
        [
            np.linalg.norm(deltas[n]) / (step * local_steps)
            for n in range(num_clients)
        ]
    )
    return global_params, local_params, weights, gradient_bounds, step, local_steps


class TestLemma2Formula:
    def test_zero_at_full_participation(self):
        value = lemma2_variance_bound(
            [0.5, 0.5], [1.0, 1.0], [1.0, 1.0], step_size=0.1, local_steps=5
        )
        assert value == pytest.approx(0.0)

    def test_decreasing_in_q(self):
        values = [
            lemma2_variance_bound(
                [0.5, 0.5], [2.0, 1.0], [q, q], step_size=0.1, local_steps=5
            )
            for q in (0.2, 0.5, 0.9)
        ]
        assert values[0] > values[1] > values[2]

    def test_scales_with_step_and_steps(self):
        base = lemma2_variance_bound(
            [1.0], [1.0], [0.5], step_size=0.1, local_steps=2
        )
        double_step = lemma2_variance_bound(
            [1.0], [1.0], [0.5], step_size=0.2, local_steps=2
        )
        assert double_step == pytest.approx(4 * base)


class TestEmpiricalMoments:
    def test_unbiased_aggregator_has_negligible_bias(self, round_setup):
        global_params, local_params, weights, _, _, _ = round_setup
        q = np.array([0.3, 0.7, 0.5, 0.9, 0.4])
        moments = empirical_aggregation_moments(
            global_params, local_params, weights, q, num_draws=4000, rng=0
        )
        assert moments["bias_sq"] < 1e-5

    def test_biased_aggregator_has_real_bias(self, round_setup):
        global_params, local_params, weights, _, _, _ = round_setup
        q = np.array([0.1, 0.9, 0.5, 0.9, 0.4])
        moments = empirical_aggregation_moments(
            global_params,
            local_params,
            weights,
            q,
            num_draws=4000,
            aggregator=ParticipantsOnlyAggregator(),
            rng=1,
        )
        assert moments["bias_sq"] > 1e-4

    def test_variance_within_lemma2_bound(self, round_setup):
        (
            global_params,
            local_params,
            weights,
            gradient_bounds,
            step,
            local_steps,
        ) = round_setup
        q = np.array([0.4, 0.6, 0.5, 0.8, 0.3])
        moments = empirical_aggregation_moments(
            global_params, local_params, weights, q, num_draws=3000, rng=2
        )
        bound = lemma2_variance_bound(
            weights, gradient_bounds, q, step_size=step, local_steps=local_steps
        )
        assert moments["mean_sq_error"] <= bound

    def test_variance_shrinks_as_q_grows(self, round_setup):
        global_params, local_params, weights, _, _, _ = round_setup
        low = empirical_aggregation_moments(
            global_params, local_params, weights, np.full(5, 0.3),
            num_draws=2000, rng=3,
        )
        high = empirical_aggregation_moments(
            global_params, local_params, weights, np.full(5, 0.9),
            num_draws=2000, rng=3,
        )
        assert high["mean_sq_error"] < low["mean_sq_error"]

    def test_full_participation_reference_requires_all(self, round_setup):
        global_params, local_params, weights, _, _, _ = round_setup
        partial = {0: local_params[0]}
        with pytest.raises(ValueError, match="every client"):
            full_participation_aggregate(global_params, partial, weights)
