"""Tests for the ``scenarios`` CLI verb."""

import json

import pytest

from repro.experiments.cli import main


@pytest.fixture(autouse=True)
def _ci_scale(monkeypatch):
    monkeypatch.setenv("REPRO_SCALE", "ci")


class TestList:
    def test_table_lists_every_registered_scenario(self, capsys):
        from repro.scenarios import list_scenarios

        assert main(["scenarios", "list"]) == 0
        out = capsys.readouterr().out
        for spec in list_scenarios():
            assert spec.name in out

    def test_json_drives_the_ci_matrix(self, capsys):
        from repro.schemas import check_envelope

        assert main(["scenarios", "list", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        check_envelope(payload, "scenario-list")
        result = payload["result"]
        assert len(result["scenarios"]) >= 6
        assert "paper-default" in result["scenarios"]
        assert "proposed" in result["mechanisms"]
        # The embedded specs round-trip, so consumers can rebuild them.
        from repro.scenarios import ScenarioSpec

        rebuilt = [ScenarioSpec.from_doc(doc) for doc in result["specs"]]
        assert [spec.name for spec in rebuilt] == result["scenarios"]


class TestRun:
    def test_run_one_scenario_writes_artifacts(self, capsys, tmp_path):
        code = main(
            [
                "--out",
                str(tmp_path),
                "scenarios",
                "run",
                "--name",
                "paper-default",
                "--mechanisms",
                "proposed,random",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Scenario: paper-default" in out
        assert "estimator_bias" in out
        payload = json.loads(
            (tmp_path / "scenario_paper-default.json").read_text()
        )
        from repro.schemas import check_envelope

        check_envelope(payload, "scenario-run")
        cells = payload["result"]["cells"]
        assert {cell["mechanism"] for cell in cells} == {
            "proposed",
            "random",
        }
        assert (tmp_path / "scenario_paper-default.csv").exists()

    def test_unknown_scenario_fails_cleanly(self, capsys):
        assert main(["scenarios", "run", "--name", "nope"]) == 2
        assert "unknown scenario" in capsys.readouterr().err

    def test_run_requires_name_or_all(self, capsys):
        assert main(["scenarios", "run"]) == 2
        assert "--name SCENARIO" in capsys.readouterr().err

    def test_json_is_list_only(self, capsys):
        assert main(["scenarios", "run", "--all", "--json"]) == 2
        assert "--json only applies" in capsys.readouterr().err

    def test_unknown_mechanism_fails_cleanly(self, capsys):
        assert (
            main(
                [
                    "scenarios",
                    "run",
                    "--name",
                    "paper-default",
                    "--mechanisms",
                    "bribe",
                ]
            )
            == 2
        )
        assert "unknown mechanism" in capsys.readouterr().err


class TestCompare:
    def test_compare_renders_matrix_and_exports(self, capsys, tmp_path):
        code = main(
            [
                "--out",
                str(tmp_path),
                "scenarios",
                "compare",
                "--name",
                "paper-default",
                "--name",
                "budget-crunch",
                "--mechanisms",
                "proposed,fixed-subset",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "paper-default" in out
        assert "budget-crunch" in out
        payload = json.loads(
            (tmp_path / "scenario_comparison.json").read_text()
        )
        assert len(payload["result"]["cells"]) == 4
        # Artifacts round-trip through the versioned codec.
        from repro.scenarios import cells_from_doc

        rebuilt = cells_from_doc(payload)
        assert [(cell.scenario, cell.mechanism) for cell in rebuilt] == [
            ("paper-default", "proposed"),
            ("paper-default", "fixed-subset"),
            ("budget-crunch", "proposed"),
            ("budget-crunch", "fixed-subset"),
        ]
