"""Tests for Stage-II best responses (Eq. 13) and inverse pricing (Eq. 17)."""

import numpy as np
import pytest

from repro.game import (
    best_response,
    best_response_vector,
    inverse_price,
    surrogate_utility,
)


def _brute_force_best(price, cost, value_contribution, q_max):
    grid = np.linspace(1e-6, q_max, 40_000)
    utility = price * grid - cost * grid**2
    if value_contribution > 0:
        utility = utility - value_contribution / grid
    best = grid[np.argmax(utility)]
    # q = 0 competes only when vA = 0 (utility -> -inf otherwise).
    if value_contribution == 0 and 0.0 >= utility.max():
        return 0.0
    return best


class TestBestResponse:
    def test_no_value_positive_price(self):
        # Linear-quadratic case: q* = P / (2c).
        assert best_response(10.0, 5.0, 0.0, 1.0) == pytest.approx(1.0)
        assert best_response(4.0, 5.0, 0.0, 1.0) == pytest.approx(0.4)

    def test_no_value_nonpositive_price_opts_out(self):
        assert best_response(0.0, 5.0, 0.0, 1.0) == 0.0
        assert best_response(-3.0, 5.0, 0.0, 1.0) == 0.0

    def test_with_value_participates_without_payment(self):
        q = best_response(0.0, 5.0, 2.0, 1.0)
        # FOC: vA/q^2 = 2cq -> q = (vA/2c)^(1/3)
        assert q == pytest.approx((2.0 / 10.0) ** (1 / 3))

    def test_with_value_accepts_negative_price(self):
        q = best_response(-5.0, 5.0, 2.0, 1.0)
        assert 0 < q < 1

    def test_cap_binds_for_generous_price(self):
        assert best_response(1e6, 1.0, 0.5, 0.8) == pytest.approx(0.8)

    @pytest.mark.parametrize(
        "price,cost,va,qmax",
        [
            (3.0, 10.0, 1.0, 1.0),
            (-2.0, 8.0, 4.0, 1.0),
            (0.5, 20.0, 0.1, 0.6),
            (50.0, 5.0, 10.0, 1.0),
            (0.0, 1.0, 0.01, 1.0),
        ],
    )
    def test_matches_brute_force(self, price, cost, va, qmax):
        analytic = best_response(price, cost, va, qmax)
        brute = _brute_force_best(price, cost, va, qmax)
        assert analytic == pytest.approx(brute, abs=2e-4)

    def test_monotone_increasing_in_price(self):
        prices = np.linspace(-10, 30, 30)
        responses = [best_response(p, 8.0, 2.0, 1.0) for p in prices]
        assert all(a <= b + 1e-12 for a, b in zip(responses, responses[1:]))

    def test_monotone_decreasing_in_cost(self):
        costs = [2.0, 5.0, 10.0, 50.0]
        responses = [best_response(5.0, c, 1.0, 1.0) for c in costs]
        assert all(a >= b for a, b in zip(responses, responses[1:]))

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            best_response(1.0, 0.0, 1.0, 1.0)
        with pytest.raises(ValueError):
            best_response(1.0, 1.0, -1.0, 1.0)
        with pytest.raises(ValueError):
            best_response(1.0, 1.0, 1.0, 1.5)


class TestInversePrice:
    def test_roundtrip_price_to_q_to_price(self, small_population):
        contributions = np.full(8, 0.5)
        q = np.random.default_rng(0).uniform(0.05, 0.95, size=8)
        prices = inverse_price(q, small_population, contributions)
        recovered = best_response_vector(
            prices, small_population, contributions
        )
        assert np.allclose(recovered, q, atol=1e-8)

    def test_formula(self):
        from repro.game import ClientPopulation

        population = ClientPopulation(
            weights=np.array([1.0]),
            gradient_bounds=np.array([2.0]),
            costs=np.array([3.0]),
            values=np.array([4.0]),
            q_max=np.array([1.0]),
        )
        price = inverse_price([0.5], population, [0.25])
        # 2*3*0.5 - 4*0.25/0.25 = 3 - 4 = -1
        assert price[0] == pytest.approx(-1.0)

    def test_zero_q_rejected(self, small_population):
        with pytest.raises(ValueError):
            inverse_price(np.zeros(8), small_population, np.full(8, 0.1))


class TestBestResponseVector:
    def test_shape_checked(self, small_population):
        with pytest.raises(ValueError):
            best_response_vector(np.zeros(3), small_population, np.zeros(8))

    def test_each_entry_is_scalar_best(self, small_population):
        contributions = np.full(8, 0.2)
        prices = np.linspace(-5, 30, 8)
        vector = best_response_vector(prices, small_population, contributions)
        for n in range(8):
            scalar = best_response(
                prices[n],
                small_population.costs[n],
                small_population.values[n] * contributions[n],
                small_population.q_max[n],
            )
            assert vector[n] == pytest.approx(scalar)


class TestSurrogateUtility:
    def test_best_response_maximizes_surrogate(self, small_population):
        contributions = np.full(8, 0.3)
        prices = np.full(8, 12.0)
        q_star = best_response_vector(prices, small_population, contributions)
        base = surrogate_utility(q_star, prices, small_population, contributions)
        rng = np.random.default_rng(1)
        for _ in range(20):
            perturbed = np.clip(
                q_star + rng.normal(0, 0.05, size=8), 1e-6, 1.0
            )
            other = surrogate_utility(
                perturbed, prices, small_population, contributions
            )
            assert np.all(other <= base + 1e-9)


class TestVectorizedNewtonSolver:
    """The vectorized bracketed-Newton solve vs the scalar np.roots path."""

    def test_matches_scalar_reference_on_random_grid(self):
        from repro.game import ClientPopulation

        rng = np.random.default_rng(42)
        n = 300
        population = ClientPopulation(
            weights=np.full(n, 1.0 / n),
            gradient_bounds=np.ones(n),
            costs=rng.uniform(0.1, 80.0, size=n),
            # ~20% of clients hold no intrinsic stake (the closed-form
            # branch), the rest spread over several orders of magnitude.
            values=np.where(
                rng.random(n) < 0.2, 0.0, rng.exponential(5.0, size=n)
            ),
            q_max=rng.uniform(0.2, 1.0, size=n),
        )
        prices = rng.normal(0.0, 25.0, size=n)
        contributions = rng.exponential(0.3, size=n)
        vector = best_response_vector(prices, population, contributions)
        for index in range(n):
            scalar = best_response(
                prices[index],
                population.costs[index],
                population.values[index] * contributions[index],
                population.q_max[index],
            )
            assert vector[index] == pytest.approx(scalar, rel=1e-9, abs=1e-12)

    def test_tiny_value_contributions_where_np_roots_degrades(self):
        """The regime the scalar path handles with bisection recovery."""
        from repro.game import ClientPopulation

        values = np.array([1e-18, 1e-12, 1e-6, 1e8])
        population = ClientPopulation(
            weights=np.full(4, 0.25),
            gradient_bounds=np.ones(4),
            costs=np.array([3.0, 8.0, 1.0, 5.0]),
            values=values,
            q_max=np.ones(4),
        )
        prices = np.array([50.0, -20.0, 0.0, -5.0])
        contributions = np.ones(4)
        vector = best_response_vector(prices, population, contributions)
        for index in range(4):
            scalar = best_response(
                prices[index],
                population.costs[index],
                values[index],
                1.0,
            )
            assert vector[index] == pytest.approx(scalar, rel=1e-9, abs=1e-15)

    def test_zero_stake_branch_is_exact_closed_form(self):
        from repro.game import ClientPopulation

        population = ClientPopulation(
            weights=np.array([0.5, 0.5]),
            gradient_bounds=np.ones(2),
            costs=np.array([5.0, 5.0]),
            values=np.zeros(2),
            q_max=np.array([1.0, 0.3]),
        )
        vector = best_response_vector(
            np.array([4.0, 100.0]), population, np.zeros(2)
        )
        assert vector[0] == 0.4  # P / (2c), bitwise: same expression
        assert vector[1] == 0.3  # capped at q_max
