"""Tests for parameter estimation (G_n, sigma_n, optima, alpha/beta fit)."""

import numpy as np
import pytest

from repro.theory import (
    compute_reference_optima,
    estimate_gradient_bounds,
    estimate_gradient_variances,
    estimate_problem_constants,
    fit_bound_scale,
    pilot_trajectory,
)
from repro.utils.rng import RngFactory


class TestReferenceOptima:
    def test_f_star_below_initial_loss(self, small_federated, small_model):
        from repro.models import global_loss

        optima = compute_reference_optima(
            small_model, small_federated, num_steps=400
        )
        init_loss = global_loss(
            small_model, small_model.init_params(), small_federated
        )
        assert optima.f_star < init_loss

    def test_local_gaps_nonnegative(self, small_federated, small_model):
        optima = compute_reference_optima(
            small_model, small_federated, num_steps=400
        )
        # F(w*_n) >= F* by optimality of w*.
        assert np.all(optima.local_gaps >= -1e-8)

    def test_local_optima_beat_global_locally(
        self, small_federated, small_model
    ):
        optima = compute_reference_optima(
            small_model, small_federated, num_steps=600
        )
        for index, shard in enumerate(small_federated.client_datasets):
            local_loss_at_global = small_model.dataset_loss(
                optima.w_star, shard
            )
            # The local optimum is at least as good locally (tolerance for
            # finite GD).
            assert optima.f_star_local[index] <= local_loss_at_global + 1e-3


class TestTrajectoryAndMoments:
    def test_pilot_trajectory_checkpoints(self, small_federated, small_model):
        checkpoints = pilot_trajectory(
            small_model,
            small_federated,
            local_steps=5,
            num_rounds=4,
            num_checkpoints=3,
            rng_factory=RngFactory(0),
        )
        assert len(checkpoints) >= 2
        assert not np.allclose(checkpoints[0], checkpoints[-1])

    def test_gradient_bounds_positive_and_stable(
        self, small_federated, small_model
    ):
        checkpoints = [small_model.init_params()]
        bounds_a = estimate_gradient_bounds(
            small_model, small_federated, checkpoints,
            rng_factory=RngFactory(1),
        )
        bounds_b = estimate_gradient_bounds(
            small_model, small_federated, checkpoints,
            rng_factory=RngFactory(1),
        )
        assert np.all(bounds_a > 0)
        assert np.array_equal(bounds_a, bounds_b)

    def test_gradient_variances_nonnegative(self, small_federated, small_model):
        variances = estimate_gradient_variances(
            small_model,
            small_federated,
            small_model.init_params(),
            rng_factory=RngFactory(2),
        )
        assert np.all(variances >= 0)

    def test_variance_shrinks_with_larger_batch(
        self, small_federated, small_model
    ):
        small_batch = estimate_gradient_variances(
            small_model,
            small_federated,
            small_model.init_params(),
            batch_size=4,
            num_samples=64,
            rng_factory=RngFactory(3),
        )
        big_batch = estimate_gradient_variances(
            small_model,
            small_federated,
            small_model.init_params(),
            batch_size=64,
            num_samples=64,
            rng_factory=RngFactory(3),
        )
        assert big_batch.mean() < small_batch.mean()


class TestEstimateProblemConstants:
    def test_constants_complete(self, small_federated, small_model):
        constants, optima = estimate_problem_constants(
            small_model,
            small_federated,
            local_steps=5,
            pilot_rounds=3,
            rng_factory=RngFactory(4),
        )
        assert constants.num_clients == small_federated.num_clients
        assert constants.smoothness > constants.strong_convexity
        assert constants.f_star == pytest.approx(optima.f_star)
        assert constants.initial_distance_sq > 0


class TestFitBoundScale:
    def test_fit_returns_positive_coefficients(
        self, small_federated, small_model
    ):
        constants, optima = estimate_problem_constants(
            small_model,
            small_federated,
            local_steps=5,
            pilot_rounds=3,
            rng_factory=RngFactory(5),
        )
        alpha, beta = fit_bound_scale(
            small_model,
            small_federated,
            constants,
            f_star=optima.f_star,
            local_steps=5,
            pilot_rounds=6,
            q_levels=(0.3, 1.0),
            seeds_per_level=1,
            rng_factory=RngFactory(6),
        )
        assert alpha > 0
        assert beta > 0

    def test_fitted_alpha_far_below_analytic(
        self, small_federated, small_model
    ):
        """The analytic worst-case alpha overstates the measured penalty."""
        from repro.theory import ConvergenceBound

        constants, optima = estimate_problem_constants(
            small_model,
            small_federated,
            local_steps=5,
            pilot_rounds=3,
            rng_factory=RngFactory(7),
        )
        alpha, _ = fit_bound_scale(
            small_model,
            small_federated,
            constants,
            f_star=optima.f_star,
            local_steps=5,
            pilot_rounds=6,
            q_levels=(0.3, 1.0),
            seeds_per_level=1,
            rng_factory=RngFactory(8),
        )
        assert alpha < ConvergenceBound.analytic_alpha(constants)
