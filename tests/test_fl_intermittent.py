"""Tests for the intermittent-availability participation extension."""

import numpy as np
import pytest

from repro.fl import (
    IntermittentAvailabilityParticipation,
    UnbiasedDeltaAggregator,
)


class TestStationaryBehaviour:
    def test_stationary_availability_formula(self):
        model = IntermittentAvailabilityParticipation(
            np.full(4, 0.5), on_to_off=0.2, off_to_on=0.6, rng=0
        )
        assert model.stationary_availability == pytest.approx(0.6 / 0.8)

    def test_inclusion_probability_is_product(self):
        q = np.array([0.2, 0.9])
        model = IntermittentAvailabilityParticipation(
            q, on_to_off=0.25, off_to_on=0.25, rng=0
        )
        assert np.allclose(model.inclusion_probabilities, 0.5 * q)

    def test_empirical_inclusion_matches(self):
        q = np.array([0.3, 0.7, 1.0])
        model = IntermittentAvailabilityParticipation(
            q, on_to_off=0.3, off_to_on=0.3, rng=1
        )
        draws = np.stack([model.sample_round(r) for r in range(8000)])
        assert np.allclose(
            draws.mean(axis=0), model.inclusion_probabilities, atol=0.03
        )

    def test_availability_is_persistent(self):
        """Low switching rates produce runs of consecutive (un)availability
        — the temporal correlation that distinguishes this model from plain
        Bernoulli participation."""
        model = IntermittentAvailabilityParticipation(
            np.ones(1), on_to_off=0.02, off_to_on=0.02, rng=2
        )
        draws = np.array(
            [model.sample_round(r)[0] for r in range(4000)], dtype=float
        )
        # Lag-1 autocorrelation must be clearly positive.
        centered = draws - draws.mean()
        autocorr = float(
            (centered[:-1] * centered[1:]).mean() / (centered.var() + 1e-12)
        )
        assert autocorr > 0.5


class TestUnbiasednessCarriesOver:
    def test_aggregation_unbiased_under_intermittency(self):
        """Lemma 1 with pi_n = stationary_on * q_n stays unbiased."""
        rng = np.random.default_rng(3)
        num_clients, dim = 4, 5
        global_params = rng.normal(size=dim)
        local_params = {
            n: global_params + rng.normal(size=dim)
            for n in range(num_clients)
        }
        sizes = rng.uniform(1, 10, size=num_clients)
        weights = sizes / sizes.sum()
        q = np.array([0.4, 0.8, 0.6, 1.0])
        model = IntermittentAvailabilityParticipation(
            q, on_to_off=0.3, off_to_on=0.45, rng=4
        )
        pi = model.inclusion_probabilities
        aggregator = UnbiasedDeltaAggregator()
        total = np.zeros(dim)
        draws = 20_000
        for r in range(draws):
            mask = model.sample_round(r)
            participants = {
                n: local_params[n] for n in range(num_clients) if mask[n]
            }
            total += aggregator.aggregate(
                global_params,
                participants,
                weights=weights,
                inclusion_probabilities=pi,
            )
        mean_aggregate = total / draws
        reference = sum(
            weights[n] * local_params[n] for n in range(num_clients)
        )
        assert np.allclose(mean_aggregate, reference, atol=0.02)


class TestValidation:
    def test_invalid_transition_rates(self):
        with pytest.raises(ValueError):
            IntermittentAvailabilityParticipation(
                np.ones(2), on_to_off=0.0, off_to_on=0.5
            )
        with pytest.raises(ValueError):
            IntermittentAvailabilityParticipation(
                np.ones(2), on_to_off=0.5, off_to_on=1.0
            )

    def test_invalid_willingness(self):
        with pytest.raises(ValueError):
            IntermittentAvailabilityParticipation(np.array([0.5, 1.5]))
