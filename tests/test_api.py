"""The repro.api facade: validation, bit-identity, and the warm cache.

The facade's contract has three legs, and each gets pinned here:

* **Typed validation** — malformed requests raise :class:`~repro.api.
  ApiError` at construction (400) or resolution (404) time, never deep in
  the solvers.
* **Bit-identity with the direct call path** — ``api.price`` /
  ``api.solve_equilibrium`` produce byte-for-byte the documents a direct
  ``scheme.apply(problem)`` / ``solve_cpl_game(problem)`` encodes.
* **The shared cache tier** — warm repeats skip the ``solve`` stage (a
  key-presence check on the trace), and a ``--cache-dir`` store warmed by
  the batch CLI serves the facade (and vice versa) because prepared-setup
  economies use the orchestrator's job keys verbatim.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import api, schemas
from repro.game import MECHANISMS, best_response_vector, solve_cpl_game
from repro.utils.serialization import equilibrium_to_doc, outcome_to_doc

#: A game-only scenario: the economy materializes synthetically in
#: milliseconds, so facade tests stay fast.
SCENARIO = "homogeneous-cheap"


@pytest.fixture(scope="module")
def runtime():
    """One warm runtime for the read-only facade tests."""
    return api.ApiRuntime(scale="ci", seed=0)


class TestRequestValidation:
    def test_exactly_one_economy_ref_required(self):
        with pytest.raises(api.ApiError, match="exactly one"):
            api.PriceRequest()
        with pytest.raises(api.ApiError, match="exactly one"):
            api.PriceRequest(scenario=SCENARIO, setup="setup1")
        with pytest.raises(api.ApiError, match="exactly one"):
            api.EquilibriumRequest()
        with pytest.raises(api.ApiError, match="exactly one"):
            api.BestResponseRequest(prices=(1.0,))

    def test_unknown_setup_maps_to_404(self):
        with pytest.raises(api.ApiError, match="unknown setup") as info:
            api.PriceRequest(setup="setup9")
        assert info.value.status == 404

    def test_unknown_equilibrium_method_is_400(self):
        with pytest.raises(api.ApiError, match="unknown method") as info:
            api.EquilibriumRequest(setup="setup1", method="newton")
        assert info.value.status == 400

    def test_scenario_run_request_validation(self):
        with pytest.raises(api.ApiError, match="non-empty"):
            api.ScenarioRunRequest()
        with pytest.raises(api.ApiError, match="repeats"):
            api.ScenarioRunRequest(scenario=SCENARIO, repeats=0)

    def test_best_response_prices_coerced_to_floats(self):
        request = api.BestResponseRequest(
            prices=[1, 2], scenario=SCENARIO
        )
        assert request.prices == (1.0, 2.0)
        assert all(isinstance(p, float) for p in request.prices)

    def test_unknown_scenario_maps_to_404(self, runtime):
        with pytest.raises(api.ApiError) as info:
            api.price(api.PriceRequest(scenario="atlantis"), runtime)
        assert info.value.status == 404

    def test_unknown_mechanism_maps_to_404(self, runtime):
        with pytest.raises(api.ApiError, match="unknown mechanism") as info:
            api.price(
                api.PriceRequest(scenario=SCENARIO, mechanism="vcg"),
                runtime,
            )
        assert info.value.status == 404

    def test_mechanism_method_mismatch_is_400(self, runtime):
        with pytest.raises(api.ApiError) as info:
            api.price(
                api.PriceRequest(
                    scenario=SCENARIO, mechanism="proposed",
                    method="bogus",
                ),
                runtime,
            )
        assert info.value.status == 400


class TestBitIdentityWithDirectCalls:
    def test_price_matches_direct_scheme_apply(self, runtime):
        response = api.price(
            api.PriceRequest(scenario=SCENARIO, mechanism="uniform"),
            runtime,
        )
        problem, _, fingerprint = runtime.economy(SCENARIO, None)
        direct = MECHANISMS["uniform"]().apply(problem)
        assert response.result["outcome"] == outcome_to_doc(direct)
        assert response.population_fingerprint == fingerprint
        assert fingerprint == schemas.problem_fingerprint(problem)
        schemas.check_envelope(response.to_doc(), "pricing-response")

    def test_equilibrium_matches_solve_cpl_game(self, runtime):
        response = api.solve_equilibrium(
            api.EquilibriumRequest(scenario=SCENARIO), runtime
        )
        problem = runtime.economy(SCENARIO, None)[0]
        direct = solve_cpl_game(problem)
        assert response.result["equilibrium"] == equilibrium_to_doc(direct)
        schemas.check_envelope(
            response.to_doc(), "equilibrium-response"
        )

    def test_best_response_matches_vectorized_kernel(self, runtime):
        problem = runtime.economy(SCENARIO, None)[0]
        prices = np.linspace(
            0.5, 2.0, problem.population.num_clients
        )
        response = api.best_response(
            api.BestResponseRequest(
                prices=tuple(prices), scenario=SCENARIO
            ),
            runtime,
        )
        direct = best_response_vector(
            prices, problem.population, problem.contributions
        )
        np.testing.assert_array_equal(response.q, direct)
        # Uncached by design: only solve + encode appear in the trace.
        assert set(response.trace.stages) == {"solve", "encode"}

    def test_best_response_rejects_wrong_shape(self, runtime):
        with pytest.raises(api.ApiError, match="one entry per client"):
            api.best_response(
                api.BestResponseRequest(
                    prices=(1.0, 2.0), scenario=SCENARIO
                ),
                runtime,
            )


class TestWarmCache:
    def test_warm_repeat_skips_the_solve_stage(self):
        runtime = api.ApiRuntime(scale="ci", seed=0)
        request = api.PriceRequest(scenario=SCENARIO, mechanism="proposed")
        cold = api.price(request, runtime)
        warm = api.price(request, runtime)
        assert cold.cached is False and warm.cached is True
        assert cold.trace.cache == "miss" and warm.trace.cache == "hit"
        assert "solve" in cold.trace.stages
        assert "solve" not in warm.trace.stages
        assert schemas.result_bytes(warm.to_doc()) == schemas.result_bytes(
            cold.to_doc()
        )

    def test_store_tier_survives_a_fresh_runtime(self, tmp_path):
        request = api.EquilibriumRequest(scenario=SCENARIO)
        first = api.solve_equilibrium(
            request, api.ApiRuntime(scale="ci", seed=0, cache_dir=tmp_path)
        )
        assert first.cached is False
        # A brand-new runtime has no in-memory memo; the hit proves the
        # content-addressed store round-trip.
        second = api.solve_equilibrium(
            request, api.ApiRuntime(scale="ci", seed=0, cache_dir=tmp_path)
        )
        assert second.cached is True
        assert "solve" not in second.trace.stages
        assert schemas.result_bytes(
            second.to_doc()
        ) == schemas.result_bytes(first.to_doc())

    def test_cli_warmed_store_serves_the_facade(self, tmp_path):
        """The cross-surface contract: ``equilibrium --cache-dir D`` then
        an API call on the same store is a pure cache hit (and back)."""
        from repro.experiments.cli import main as cli_main

        assert cli_main([
            "--scale", "ci", "--cache-dir", str(tmp_path),
            "equilibrium", "--setup", "setup1",
        ]) == 0
        response = api.solve_equilibrium(
            api.EquilibriumRequest(setup="setup1"),
            api.ApiRuntime(scale="ci", seed=0, cache_dir=tmp_path),
        )
        assert response.cached is True
        assert "solve" not in response.trace.stages

    def test_undecodable_store_entry_is_a_miss(self, tmp_path):
        runtime = api.ApiRuntime(scale="ci", seed=0, cache_dir=tmp_path)
        request = api.PriceRequest(scenario=SCENARIO, mechanism="uniform")
        cold = api.price(request, runtime)
        problem, prepared, fingerprint = runtime.economy(SCENARIO, None)
        from repro.experiments.orchestrator import _scheme_spec

        spec = _scheme_spec(MECHANISMS["uniform"](), None)
        key, key_doc = runtime.solve_key(
            prepared, fingerprint, spec, f"scenario/{SCENARIO}"
        )
        # Corrupt both tiers: the facade must quietly recompute.
        runtime._memo[key] = {"garbage": True}
        runtime.store.put(key, key_doc, spec.kind, {"garbage": True})
        again = api.price(request, runtime)
        assert again.cached is False
        assert again.result == cold.result


class TestRunScenario:
    def test_cells_and_round_trip(self, runtime):
        response = api.run_scenario(
            api.ScenarioRunRequest(
                scenario=SCENARIO, mechanisms=("uniform", "random")
            ),
            runtime,
        )
        assert [c.mechanism for c in response.cells] == [
            "uniform", "random",
        ]
        doc = response.to_doc()
        schemas.check_envelope(doc, "scenario-run")
        decoded = schemas.scenario_cells_from_doc(doc)
        assert [(c.scenario, c.mechanism) for c in decoded] == [
            (SCENARIO, "uniform"), (SCENARIO, "random"),
        ]

    def test_warm_repeat_is_cached(self, runtime):
        request = api.ScenarioRunRequest(
            scenario=SCENARIO, mechanisms=("uniform", "random")
        )
        cold = api.run_scenario(request, runtime)
        warm = api.run_scenario(request, runtime)
        assert warm.cached is True
        assert "solve" not in warm.trace.stages
        assert schemas.result_bytes(warm.to_doc()) == schemas.result_bytes(
            cold.to_doc()
        )

    def test_unknown_mechanisms_map_to_404(self, runtime):
        with pytest.raises(api.ApiError, match="unknown mechanism") as info:
            api.run_scenario(
                api.ScenarioRunRequest(
                    scenario=SCENARIO, mechanisms=("uniform", "vcg")
                ),
                runtime,
            )
        assert info.value.status == 404

    def test_unknown_scenario_maps_to_404(self, runtime):
        with pytest.raises(api.ApiError) as info:
            api.run_scenario(
                api.ScenarioRunRequest(scenario="atlantis"), runtime
            )
        assert info.value.status == 404


class TestRuntimePlumbing:
    def test_default_runtime_is_a_singleton(self):
        assert api.default_runtime() is api.default_runtime()

    def test_orchestrator_store_is_adopted(self, tmp_path):
        from repro.experiments.orchestrator import (
            ExperimentOrchestrator,
            ResultStore,
        )

        store = ResultStore(tmp_path)
        orchestrator = ExperimentOrchestrator(store=store)
        runtime = api.ApiRuntime(
            scale="ci", seed=0, orchestrator=orchestrator
        )
        assert runtime.store is store

    def test_economy_requires_exactly_one_ref(self, runtime):
        with pytest.raises(api.ApiError, match="exactly one"):
            runtime.economy(None, None)
        with pytest.raises(api.ApiError, match="exactly one"):
            runtime.economy(SCENARIO, "setup1")

    def test_economies_stay_warm(self, runtime):
        first = runtime.economy(SCENARIO, None)
        second = runtime.economy(SCENARIO, None)
        assert first[0] is second[0]
        assert first[2] == second[2]
