"""Memory-bounded training: chunked rounds + streaming federations.

Two contracts under test:

* **Bit-identity.** Every chunking of the vectorized round — and the
  streaming storage mode it usually rides with — produces training
  histories bit-identical to the eager full-width path, because stack
  slices are bit-identical to the scalar path and evaluation chunks are
  client-aligned and storage-independent.
* **Bounded memory.** Peak allocation during a streaming run scales with
  the chunk width (and the evaluation-chunk constant), not the fleet
  size; the eager path's peak grows with the federation.
"""

from __future__ import annotations

import tracemalloc

import numpy as np
import pytest

import repro.models.metrics as metrics
from repro.datasets import streaming_synthetic_federated
from repro.experiments.configs import SCALES, SETUPS, apply_scale
from repro.experiments.orchestrator import TrainJob, job_key
from repro.experiments.setup import prepare_setup
from repro.fl import BernoulliParticipation, FederatedTrainer
from repro.models import MultinomialLogisticRegression
from repro.utils.rng import RngFactory


@pytest.fixture(scope="module")
def ci_prepared():
    scale = SCALES["ci"]
    config = apply_scale(SETUPS["setup1"], scale)
    return prepare_setup(config, scale=scale, seed=11)


def _model(federated) -> MultinomialLogisticRegression:
    return MultinomialLogisticRegression(
        num_features=federated.num_features,
        num_classes=federated.num_classes,
        l2=1e-2,
    )


def _run(
    model,
    federated,
    q,
    *,
    seed=3,
    backend="vectorized",
    chunk_size=None,
    local_steps=3,
    batch_size=12,
    num_rounds=6,
):
    trainer = FederatedTrainer(
        model,
        federated,
        BernoulliParticipation(q, rng=RngFactory(seed).make("part")),
        local_steps=local_steps,
        batch_size=batch_size,
        eval_every=2,
        rng_factory=RngFactory(seed),
        backend=backend,
        chunk_size=chunk_size,
    )
    history = trainer.run(num_rounds)
    return history, trainer.server.params


class TestChunkedBitIdentity:
    def test_every_chunking_matches_full_width(self):
        federated = streaming_synthetic_federated(
            18, total_samples=500, seed=7, test_clients=6
        ).materialize()
        # The batch-width grouping escape hatch must engage inside chunks.
        assert federated.sizes.min() < 12 < federated.sizes.max()
        model = _model(federated)
        q = np.full(18, 0.6)
        reference, reference_params = _run(model, federated, q)
        for chunk_size in (1, 4, 7, 18, 50):
            history, params = _run(
                model, federated, q, chunk_size=chunk_size
            )
            assert history.records == reference.records, chunk_size
            assert np.array_equal(params, reference_params), chunk_size

    def test_streaming_matches_eager_all_engines(self):
        streaming = streaming_synthetic_federated(
            14, total_samples=420, seed=9, test_clients=5, cache_shards=3
        )
        eager = streaming.materialize()
        model = _model(eager)
        q = np.full(14, 0.5)
        reference, reference_params = _run(model, eager, q)
        for kwargs in (
            dict(),  # auto-chunked streaming default
            dict(chunk_size=5),
            dict(backend="loop"),
        ):
            history, params = _run(model, streaming, q, **kwargs)
            assert history.records == reference.records, kwargs
            assert np.array_equal(params, reference_params), kwargs

    def test_identity_holds_across_eval_chunk_boundaries(self, monkeypatch):
        """Multi-chunk evaluation (fleets beyond EVAL_CHUNK_SAMPLES) must
        stay bit-identical between storage modes."""
        monkeypatch.setattr(metrics, "EVAL_CHUNK_SAMPLES", 64)
        streaming = streaming_synthetic_federated(
            12, total_samples=360, seed=4, test_clients=4
        )
        eager = streaming.materialize()
        model = _model(eager)
        q = np.full(12, 0.5)
        reference, _ = _run(model, eager, q, chunk_size=None)
        chunked, _ = _run(model, streaming, q, chunk_size=3)
        assert chunked.records == reference.records

    def test_chunk_size_validated(self):
        federated = streaming_synthetic_federated(
            4, total_samples=80, seed=1, test_clients=2
        )
        with pytest.raises(ValueError, match="chunk_size"):
            FederatedTrainer(
                _model(federated),
                federated,
                BernoulliParticipation(np.full(4, 0.5)),
                chunk_size=0,
            )

    def test_streaming_defaults_to_bounded_chunk(self):
        federated = streaming_synthetic_federated(
            4, total_samples=80, seed=1, test_clients=2
        )
        trainer = FederatedTrainer(
            _model(federated),
            federated,
            BernoulliParticipation(np.full(4, 0.5)),
        )
        assert trainer.streaming
        assert trainer.chunk_size is not None


class TestChunkKnobNeverForksTheCache:
    def test_chunk_size_excluded_from_job_identity(self):
        base = TrainJob(q=(0.5, 0.5), seed=0)
        chunked = TrainJob(q=(0.5, 0.5), seed=0, chunk_size=8)
        assert base.key_fields() == chunked.key_fields()
        assert "chunk_size" not in base.key_fields()

    def test_chunk_size_keeps_cache_keys(self, ci_prepared):
        base = job_key(ci_prepared, TrainJob(q=(0.5,) * 8, seed=1))
        chunked = job_key(
            ci_prepared, TrainJob(q=(0.5,) * 8, seed=1, chunk_size=4)
        )
        assert base == chunked


class TestPeakMemoryIsChunkBounded:
    """The satellite's tier-1 memory pin, via tracemalloc (numpy routes
    array allocations through it): streaming peak allocation is a
    fraction of the eager run's and does not grow with the fleet."""

    @staticmethod
    def _traced_run(federated, q, **kwargs):
        model = _model(federated)
        tracemalloc.start()
        tracemalloc.reset_peak()
        history, _ = _run(model, federated, q, **kwargs)
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        return history, peak

    def test_streaming_peak_is_far_below_eager(self):
        streaming = streaming_synthetic_federated(
            120,
            total_samples=9_600,
            seed=6,
            test_clients=8,
            cache_shards=4,
        )
        eager = streaming.materialize()
        q = np.full(120, 0.4)
        eager_history, eager_peak = self._traced_run(eager, q)
        stream_history, stream_peak = self._traced_run(
            streaming, q, chunk_size=8
        )
        assert stream_history.records == eager_history.records
        # Eager residency: all shards + the flat/pool staging copies +
        # the pooled evaluation cache. Streaming holds one chunk (8
        # clients), a 4-shard LRU, and one evaluation chunk.
        assert stream_peak < eager_peak / 2, (stream_peak, eager_peak)

    def test_streaming_peak_does_not_scale_with_fleet(self):
        peaks = {}
        for num_clients in (60, 180):
            federated = streaming_synthetic_federated(
                num_clients,
                total_samples=num_clients * 80,
                seed=8,
                test_clients=8,
                cache_shards=4,
                # Cap shards like the megafleet scenario does: the raw
                # power law hands its top client a constant *fraction* of
                # the total, which would make the largest single shard —
                # an irreducible term of any pipeline's peak — grow with
                # the fleet no matter how training is chunked.
                max_size=320,
            )
            q = np.full(num_clients, 0.3)
            _, peaks[num_clients] = self._traced_run(
                federated, q, chunk_size=8, num_rounds=4
            )
        # 3x the fleet (and 3x the total samples) must not 2x the peak:
        # residency is bounded by chunk width + eval-chunk constant.
        assert peaks[180] < 2.0 * peaks[60], peaks
