"""Tests for the paper's equilibrium properties (Thm 2-3, Cor 1, Prop 1)."""

import math

import numpy as np
import pytest

from repro.game import (
    ClientPopulation,
    ServerProblem,
    check_proposition1,
    corollary1_violations,
    interior_mask,
    predicted_prices,
    solve_cpl_game,
    theorem2_invariant,
    value_threshold,
)


def _uniform_quality_population(values, costs=None):
    """Clients identical in (a, G, q_max); only v (and optionally c) vary."""
    n = len(values)
    costs = np.full(n, 25.0) if costs is None else np.asarray(costs, float)
    return ClientPopulation(
        weights=np.full(n, 1.0 / n),
        gradient_bounds=np.full(n, 3.0),
        costs=costs,
        values=np.asarray(values, dtype=float),
        q_max=np.ones(n),
    )


class TestTheorem2:
    def test_invariant_constant_across_interior_clients(self, small_problem):
        equilibrium = solve_cpl_game(small_problem)
        values, interior = theorem2_invariant(small_problem, equilibrium.q)
        inner = values[interior]
        assert inner.size >= 2
        assert np.allclose(inner, inner[0], rtol=1e-5)

    def test_higher_quality_higher_q(self):
        """Clients with larger a_n G_n participate more (same c, v)."""
        n = 6
        population = ClientPopulation(
            weights=np.full(n, 1.0 / n),
            gradient_bounds=np.linspace(1.0, 6.0, n),
            costs=np.full(n, 25.0),
            values=np.full(n, 10.0),
            q_max=np.ones(n),
        )
        problem = ServerProblem(
            population=population, alpha=3_000.0, num_rounds=200, budget=20.0
        )
        equilibrium = solve_cpl_game(problem)
        assert np.all(np.diff(equilibrium.q) >= -1e-9)

    def test_higher_cost_lower_q(self):
        """Clients with larger c_n participate less (same aG, v)."""
        population = _uniform_quality_population(
            values=np.full(6, 10.0), costs=np.linspace(10.0, 60.0, 6)
        )
        problem = ServerProblem(
            population=population, alpha=3_000.0, num_rounds=200, budget=20.0
        )
        equilibrium = solve_cpl_game(problem)
        assert np.all(np.diff(equilibrium.q) <= 1e-9)

    def test_higher_value_lower_q(self):
        """Counter-intuitive: larger v_n means lower q^SE (same aG, c)."""
        population = _uniform_quality_population(
            values=np.linspace(0.0, 100.0, 6)
        )
        problem = ServerProblem(
            population=population, alpha=3_000.0, num_rounds=200, budget=20.0
        )
        equilibrium = solve_cpl_game(problem)
        interior = interior_mask(problem, equilibrium.q)
        q_interior = equilibrium.q[interior]
        assert np.all(np.diff(q_interior) <= 1e-9)


class TestTheorem3:
    def test_predicted_prices_match_solver(self, small_problem):
        equilibrium = solve_cpl_game(small_problem)
        predictions = predicted_prices(small_problem, equilibrium.lambda_star)
        interior = interior_mask(small_problem, equilibrium.q)
        assert np.allclose(
            predictions[interior], equilibrium.prices[interior], rtol=1e-4
        )

    def test_price_zero_exactly_at_threshold(self):
        """A client with v_n = v_t has P_n = 0 (the Theorem-3 boundary).

        Setting one client's value to the threshold shifts the equilibrium
        (and hence the threshold itself), so we iterate to the fixed point
        where v_2 equals the resulting v_t, and check P_2 vanishes there.
        """
        population = _uniform_quality_population(values=np.zeros(4))
        boundary_value = 0.0
        for _ in range(40):
            values = np.array([0.0, 0.0, boundary_value, 0.0])
            problem = ServerProblem(
                population=population.with_values(values),
                alpha=3_000.0,
                num_rounds=200,
                budget=15.0,
            )
            equilibrium = solve_cpl_game(problem)
            new_boundary = equilibrium.value_threshold
            if abs(new_boundary - boundary_value) < 1e-9 * max(
                1.0, boundary_value
            ):
                boundary_value = new_boundary
                break
            boundary_value = new_boundary
        assert abs(equilibrium.prices[2]) < 1e-3 * np.abs(
            equilibrium.prices
        ).max()

    def test_higher_cost_higher_price(self):
        """Counter-intuitive Theorem-3 insight: larger c_n, larger P_n."""
        population = _uniform_quality_population(
            values=np.full(6, 5.0), costs=np.linspace(10.0, 60.0, 6)
        )
        problem = ServerProblem(
            population=population, alpha=3_000.0, num_rounds=200, budget=20.0
        )
        equilibrium = solve_cpl_game(problem)
        interior = interior_mask(problem, equilibrium.q)
        prices = equilibrium.prices[interior]
        assert np.all(np.diff(prices) >= -1e-9)

    def test_value_threshold_helper(self):
        assert value_threshold(0.0) == math.inf
        assert value_threshold(0.5) == pytest.approx(1.0 / 1.5)

    def test_predicted_prices_requires_positive_lambda(self, small_problem):
        with pytest.raises(ValueError):
            predicted_prices(small_problem, 0.0)


class TestProposition1:
    def test_q_and_p_increase_with_budget(self, small_population):
        problem = ServerProblem(
            population=small_population,
            alpha=2_000.0,
            num_rounds=200,
            budget=30.0,
        )
        report = check_proposition1(problem, budgets=[5.0, 15.0, 40.0, 90.0])
        assert report.q_monotone
        assert report.price_monotone
        assert np.all(np.diff(report.mean_q) >= -1e-9)


class TestCorollary1:
    def test_no_violations_at_equilibrium(self, small_problem):
        equilibrium = solve_cpl_game(small_problem)
        assert corollary1_violations(equilibrium) == []

    def test_no_violations_with_wide_value_spread(self, small_population):
        values = np.array([0.0, 2.0, 10.0, 40.0, 90.0, 200.0, 500.0, 900.0])
        problem = ServerProblem(
            population=small_population.with_values(values),
            alpha=2_000.0,
            num_rounds=200,
            budget=25.0,
        )
        equilibrium = solve_cpl_game(problem)
        assert corollary1_violations(equilibrium) == []
