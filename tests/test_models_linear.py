"""Tests for the convex models: gradients, convexity constants, optima."""

import numpy as np
import pytest

from repro.models import MultinomialLogisticRegression, RidgeRegression


def _numerical_gradient(fn, params, eps=1e-6):
    grad = np.zeros_like(params)
    for i in range(len(params)):
        up, down = params.copy(), params.copy()
        up[i] += eps
        down[i] -= eps
        grad[i] = (fn(up) - fn(down)) / (2 * eps)
    return grad


@pytest.fixture()
def logistic_data():
    rng = np.random.default_rng(0)
    features = rng.normal(size=(60, 5))
    labels = rng.integers(0, 3, size=60)
    return features, labels


class TestLogisticRegression:
    def test_param_count(self):
        model = MultinomialLogisticRegression(5, 3)
        assert model.num_params == 3 * 5 + 3

    def test_init_params_zero(self):
        model = MultinomialLogisticRegression(4, 2)
        assert np.all(model.init_params() == 0)

    def test_gradient_matches_numerical(self, logistic_data):
        features, labels = logistic_data
        model = MultinomialLogisticRegression(5, 3, l2=0.05)
        rng = np.random.default_rng(1)
        params = rng.normal(size=model.num_params)
        analytic = model.gradient(params, features, labels)
        numerical = _numerical_gradient(
            lambda p: model.loss(p, features, labels), params
        )
        assert np.allclose(analytic, numerical, atol=1e-5)

    def test_loss_at_zero_is_log_classes(self, logistic_data):
        features, labels = logistic_data
        model = MultinomialLogisticRegression(5, 3, l2=0.01)
        assert model.loss(model.init_params(), features, labels) == (
            pytest.approx(np.log(3))
        )

    def test_strong_convexity_along_segment(self, logistic_data):
        features, labels = logistic_data
        model = MultinomialLogisticRegression(5, 3, l2=0.1)
        rng = np.random.default_rng(2)
        a = rng.normal(size=model.num_params)
        b = rng.normal(size=model.num_params)
        mid = 0.5 * (a + b)
        lhs = model.loss(mid, features, labels)
        rhs = (
            0.5 * model.loss(a, features, labels)
            + 0.5 * model.loss(b, features, labels)
            - 0.125 * model.l2 * np.sum((a - b) ** 2)
        )
        assert lhs <= rhs + 1e-12

    def test_smoothness_bounds_gradient_lipschitz(self, logistic_data):
        features, labels = logistic_data
        model = MultinomialLogisticRegression(5, 3, l2=0.01)
        smoothness, mu = model.smoothness_constants(features)
        assert mu == pytest.approx(0.01)
        rng = np.random.default_rng(3)
        for _ in range(10):
            a = rng.normal(size=model.num_params)
            b = rng.normal(size=model.num_params)
            grad_gap = np.linalg.norm(
                model.gradient(a, features, labels)
                - model.gradient(b, features, labels)
            )
            assert grad_gap <= smoothness * np.linalg.norm(a - b) + 1e-9

    def test_predictions_shape_and_range(self, logistic_data):
        features, labels = logistic_data
        model = MultinomialLogisticRegression(5, 3)
        rng = np.random.default_rng(4)
        preds = model.predict(rng.normal(size=model.num_params), features)
        assert preds.shape == (60,)
        assert set(np.unique(preds)).issubset({0, 1, 2})

    def test_wrong_param_shape_rejected(self, logistic_data):
        features, labels = logistic_data
        model = MultinomialLogisticRegression(5, 3)
        with pytest.raises(ValueError, match="params"):
            model.loss(np.zeros(7), features, labels)

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            MultinomialLogisticRegression(0, 3)
        with pytest.raises(ValueError):
            MultinomialLogisticRegression(5, 1)
        with pytest.raises(ValueError):
            MultinomialLogisticRegression(5, 3, l2=0)


class TestRidgeRegression:
    @pytest.fixture()
    def ridge_data(self):
        rng = np.random.default_rng(5)
        features = rng.normal(size=(40, 3))
        targets = features @ np.array([1.0, -2.0, 0.5]) + 0.3
        return features, targets

    def test_gradient_matches_numerical(self, ridge_data):
        features, targets = ridge_data
        model = RidgeRegression(3, l2=0.1)
        rng = np.random.default_rng(6)
        params = rng.normal(size=model.num_params)
        analytic = model.gradient(params, features, targets)
        numerical = _numerical_gradient(
            lambda p: model.loss(p, features, targets), params
        )
        assert np.allclose(analytic, numerical, atol=1e-6)

    def test_closed_form_is_stationary(self, ridge_data):
        features, targets = ridge_data
        model = RidgeRegression(3, l2=0.1)
        optimum = model.closed_form_optimum(features, targets)
        grad = model.gradient(optimum, features, targets)
        assert np.linalg.norm(grad) < 1e-10

    def test_closed_form_recovers_low_noise_weights(self, ridge_data):
        features, targets = ridge_data
        model = RidgeRegression(3, l2=1e-8)
        optimum = model.closed_form_optimum(features, targets)
        assert np.allclose(optimum[:3], [1.0, -2.0, 0.5], atol=1e-3)

    def test_smoothness_constants_bracket_hessian(self, ridge_data):
        features, targets = ridge_data
        model = RidgeRegression(3, l2=0.2)
        smoothness, mu = model.smoothness_constants(features)
        assert smoothness >= mu > 0
