"""The versioned-envelope contract: validation and exact codec round-trips.

Every machine-readable payload travels in one envelope shape
(``schema_version`` / ``population_fingerprint`` / ``result`` / ``trace``),
and every encoder in :mod:`repro.schemas` is paired with a decoder that
round-trips exactly: ``encode(decode(doc)) == doc``. These tests pin both
halves — the shape checks (so service clients get loud, actionable
failures) and the round-trips (so CLI artifacts, service responses, and
the CI matrix document never drift apart silently).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import schemas
from repro.game import MECHANISMS, ServerProblem, solve_cpl_game
from repro.scenarios import list_scenarios
from repro.scenarios.runner import ScenarioCell
from repro.utils.serialization import equilibrium_to_doc, outcome_to_doc


@pytest.fixture()
def fingerprint(small_problem):
    return schemas.problem_fingerprint(small_problem)


class TestEnvelope:
    def test_every_kind_has_a_matching_version_tag(self):
        for kind, version in schemas.SCHEMA_VERSIONS.items():
            assert version == f"{kind}/v1"
            assert schemas.schema_version(kind) == version

    def test_unknown_kind_raises(self):
        with pytest.raises(schemas.SchemaError, match="unknown schema kind"):
            schemas.schema_version("telemetry")
        with pytest.raises(schemas.SchemaError):
            schemas.envelope("telemetry", {})

    def test_envelope_shape(self):
        doc = schemas.envelope("health", {"status": "ok"})
        assert tuple(doc) == schemas.ENVELOPE_FIELDS
        assert doc["schema_version"] == "health/v1"
        assert doc["population_fingerprint"] is None
        assert doc["trace"] is None
        schemas.check_envelope(doc, "health")

    def test_envelope_rejects_non_dict_result(self):
        with pytest.raises(schemas.SchemaError, match="must be a dict"):
            schemas.envelope("health", [1, 2])

    @pytest.mark.parametrize(
        "mutate, message",
        [
            (lambda d: d.pop("result"), "missing 'result'"),
            (lambda d: d.pop("trace"), "missing 'trace'"),
            (
                lambda d: d.update(schema_version="health"),
                "must look like",
            ),
            (
                lambda d: d.update(schema_version="telemetry/v9"),
                "unknown schema_version",
            ),
            (
                lambda d: d.update(population_fingerprint=42),
                "hex string or",
            ),
            (lambda d: d.update(result=[1]), "result must be a dict"),
            (lambda d: d.update(trace="yes"), "trace must be a dict"),
        ],
    )
    def test_check_envelope_rejects(self, mutate, message):
        doc = schemas.envelope("health", {"status": "ok"})
        mutate(doc)
        with pytest.raises(schemas.SchemaError, match=message):
            schemas.check_envelope(doc)

    def test_check_envelope_rejects_wrong_kind(self):
        doc = schemas.envelope("health", {"status": "ok"})
        with pytest.raises(schemas.SchemaError, match="expected a"):
            schemas.check_envelope(doc, "error")

    def test_check_envelope_rejects_non_dict(self):
        with pytest.raises(schemas.SchemaError, match="not an envelope"):
            schemas.check_envelope("{}")


class TestResultBytes:
    """``result_bytes`` is THE bit-identity contract: everything but the
    trace, canonically encoded."""

    def test_trace_is_excluded(self):
        base = {"status": "ok"}
        with_trace = schemas.envelope(
            "health", base, trace={"format": "trace/v1", "trace_id": "a",
                                   "stages": {}, "cache": None},
        )
        without = schemas.envelope("health", dict(base))
        assert schemas.result_bytes(with_trace) == schemas.result_bytes(
            without
        )

    def test_result_changes_the_bytes(self):
        a = schemas.envelope("health", {"status": "ok"})
        b = schemas.envelope("health", {"status": "degraded"})
        assert schemas.result_bytes(a) != schemas.result_bytes(b)

    def test_fingerprint_changes_the_bytes(self):
        a = schemas.envelope("health", {}, population_fingerprint="aa")
        b = schemas.envelope("health", {}, population_fingerprint="bb")
        assert schemas.result_bytes(a) != schemas.result_bytes(b)


class TestProblemFingerprint:
    def test_deterministic(self, small_problem):
        assert schemas.problem_fingerprint(
            small_problem
        ) == schemas.problem_fingerprint(small_problem)

    def test_sensitive_to_the_game_data(self, small_problem):
        richer = ServerProblem(
            population=small_problem.population,
            alpha=small_problem.alpha,
            num_rounds=small_problem.num_rounds,
            budget=small_problem.budget * 2,
        )
        assert schemas.problem_fingerprint(
            richer
        ) != schemas.problem_fingerprint(small_problem)


class TestPricingResponseRoundTrip:
    @pytest.mark.parametrize("mechanism", ["uniform", "proposed"])
    def test_encode_decode_encode_is_exact(
        self, small_problem, fingerprint, mechanism
    ):
        outcome = MECHANISMS[mechanism]().apply(small_problem)
        doc = schemas.pricing_response_doc(
            outcome, population_fingerprint=fingerprint
        )
        schemas.check_envelope(doc, "pricing-response")
        decoded = schemas.pricing_response_from_doc(doc, small_problem)
        assert schemas.pricing_response_doc(
            decoded, population_fingerprint=fingerprint
        ) == doc

    def test_decoded_outcome_matches_numerically(
        self, small_problem, fingerprint
    ):
        outcome = MECHANISMS["uniform"]().apply(small_problem)
        doc = schemas.pricing_response_doc(
            outcome, population_fingerprint=fingerprint
        )
        decoded = schemas.pricing_response_from_doc(doc)
        np.testing.assert_array_equal(decoded.prices, outcome.prices)
        np.testing.assert_array_equal(decoded.q, outcome.q)
        assert decoded.spending == outcome.spending


class TestBestResponseRoundTrip:
    def test_round_trip(self, fingerprint):
        prices = [1.0, 2.5, 0.0]
        q = [0.1, 0.9, 0.5]
        doc = schemas.best_response_doc(
            prices, q, population_fingerprint=fingerprint
        )
        schemas.check_envelope(doc, "best-response")
        out_prices, out_q = schemas.best_response_from_doc(doc)
        np.testing.assert_array_equal(out_prices, prices)
        np.testing.assert_array_equal(out_q, q)
        assert schemas.best_response_doc(
            out_prices, out_q, population_fingerprint=fingerprint
        ) == doc


class TestEquilibriumResponseRoundTrip:
    def test_encode_decode_encode_is_exact(self, small_problem, fingerprint):
        equilibrium = solve_cpl_game(small_problem)
        doc = schemas.equilibrium_response_doc(
            equilibrium, population_fingerprint=fingerprint
        )
        schemas.check_envelope(doc, "equilibrium-response")
        assert doc["result"]["equilibrium"] == equilibrium_to_doc(
            equilibrium
        )
        decoded = schemas.equilibrium_response_from_doc(doc, small_problem)
        assert schemas.equilibrium_response_doc(
            decoded, population_fingerprint=fingerprint
        ) == doc

    def test_summary_sanitizes_non_finite_floats(self, small_problem):
        equilibrium = solve_cpl_game(small_problem)
        doc = schemas.equilibrium_response_doc(equilibrium)
        for value in doc["result"]["summary"].values():
            if isinstance(value, float):
                assert np.isfinite(value)


class TestCompareSchemesRoundTrip:
    def test_every_scheme_outcome_round_trips(
        self, small_problem, fingerprint
    ):
        """``compare_schemes`` results travel as ``pricing-response/v1``
        envelopes, one per scheme — no ad-hoc dict shapes."""
        from repro.game import compare_schemes

        for outcome in compare_schemes(small_problem).values():
            doc = schemas.pricing_response_doc(
                outcome, population_fingerprint=fingerprint
            )
            decoded = schemas.pricing_response_from_doc(doc, small_problem)
            assert schemas.pricing_response_doc(
                decoded, population_fingerprint=fingerprint
            ) == doc


class TestScenarioCellsRoundTrip:
    def test_encode_decode_encode_is_exact(self, small_problem, fingerprint):
        cells = [
            ScenarioCell(
                scenario="toy",
                mechanism=name,
                outcome=MECHANISMS[name]().apply(small_problem),
                metrics={"spending": 1.25, "mean_q": 0.5},
            )
            for name in ("proposed", "uniform")
        ]
        doc = schemas.scenario_cells_doc(
            cells, population_fingerprint=fingerprint
        )
        schemas.check_envelope(doc, "scenario-run")
        # The artifact is deliberately problem-free: nested equilibria
        # (the proposed cell carries one) are dropped on encode.
        for cell_doc in doc["result"]["cells"]:
            assert cell_doc["outcome"]["equilibrium"] is None
        decoded = schemas.scenario_cells_from_doc(doc)
        assert [(c.scenario, c.mechanism) for c in decoded] == [
            ("toy", "proposed"), ("toy", "uniform"),
        ]
        assert schemas.scenario_cells_doc(
            decoded, population_fingerprint=fingerprint
        ) == doc

    def test_decode_rejects_wrong_kind(self):
        doc = schemas.envelope("health", {"cells": []})
        with pytest.raises(schemas.SchemaError):
            schemas.scenario_cells_from_doc(doc)


class TestScenarioListRoundTrip:
    def test_encode_decode_encode_is_exact(self):
        specs = list_scenarios()
        doc = schemas.scenario_list_doc(specs, ["uniform", "proposed"])
        schemas.check_envelope(doc, "scenario-list")
        assert doc["result"]["mechanisms"] == ["proposed", "uniform"]
        assert doc["result"]["scenarios"] == [spec.name for spec in specs]
        decoded = schemas.scenario_list_from_doc(doc)
        assert schemas.scenario_list_doc(
            decoded, doc["result"]["mechanisms"]
        ) == doc


class TestComparisonSummaryRoundTrip:
    def test_encode_decode_encode_is_exact(self, fingerprint):
        summary = {
            "proposed": {"final_loss": 0.31, "spending": 29.9,
                         "budget_tight": True},
            "uniform": {"final_loss": 0.44, "spending": 30.0,
                        "budget_tight": True},
        }
        doc = schemas.comparison_summary_doc(
            summary, population_fingerprint=fingerprint
        )
        schemas.check_envelope(doc, "comparison-summary")
        decoded = schemas.comparison_summary_from_doc(doc)
        assert decoded == summary
        assert schemas.comparison_summary_doc(
            decoded, population_fingerprint=fingerprint
        ) == doc


class TestTableRowsRoundTrip:
    def test_encode_decode_encode_is_exact(self, fingerprint):
        rows = [("setup1", 0.123, 4), ("setup2", 0.456, 7)]
        doc = schemas.table_rows_doc(
            5, rows, population_fingerprint=fingerprint
        )
        schemas.check_envelope(doc, "table-rows")
        decoded = schemas.table_rows_from_doc(doc)
        assert decoded == [list(row) for row in rows]
        assert schemas.table_rows_doc(
            5, decoded, population_fingerprint=fingerprint
        ) == doc


class TestServiceDocs:
    def test_metrics_snapshot_envelope(self):
        doc = schemas.metrics_snapshot_doc(
            {"requests": {}, "cache": {"hits": 0, "misses": 0},
             "latency": {}}
        )
        schemas.check_envelope(doc, "metrics-snapshot")

    def test_error_envelope(self):
        doc = schemas.error_doc(404, "no such endpoint")
        schemas.check_envelope(doc, "error")
        assert doc["result"] == {
            "status": 404, "message": "no such endpoint",
        }


class TestOutcomeDocStability:
    """The ``outcome/v1`` sub-document is the cache-entry payload shared
    with the orchestrator's store; its encoding must be deterministic."""

    def test_outcome_to_doc_deterministic(self, small_problem):
        outcome = MECHANISMS["proposed"]().apply(small_problem)
        assert outcome_to_doc(outcome) == outcome_to_doc(outcome)
