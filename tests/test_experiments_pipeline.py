"""End-to-end tests of the experiment pipeline at CI scale.

These are the repository's integration tests: dataset -> estimation ->
calibration -> game -> FL training on the simulated testbed -> tables and
figures. Kept at ``ci`` scale so the whole file runs in well under a minute.
"""

import math

import numpy as np
import pytest

from repro.experiments import (
    SCALES,
    SETUP1,
    apply_scale,
    comparison_summary,
    fig4_series,
    prepare_setup,
    reachable_accuracy_target,
    reachable_loss_target,
    run_pricing_comparison,
    speedup_percentages,
    sweep_budget,
    sweep_mean_value,
    sweep_series,
    table2_rows,
    table3_rows,
    table4_rows,
    table5_rows,
)


@pytest.fixture(scope="module")
def prepared():
    scale = SCALES["ci"]
    config = apply_scale(SETUP1, scale)
    return prepare_setup(config, scale=scale, seed=0)


@pytest.fixture(scope="module")
def comparison(prepared):
    return run_pricing_comparison(prepared, repeats=1)


class TestPreparedSetup:
    def test_calibrated_alpha_positive(self, prepared):
        assert prepared.alpha > 0
        assert prepared.beta > 0

    def test_population_matches_dataset(self, prepared):
        assert (
            prepared.problem.population.num_clients
            == prepared.federated.num_clients
        )
        assert np.allclose(
            prepared.problem.population.weights, prepared.federated.weights
        )

    def test_budget_scaled(self, prepared):
        fraction = SCALES["ci"].num_clients / 40
        assert prepared.problem.budget == pytest.approx(200.0 * fraction)

    def test_with_budget(self, prepared):
        doubled = prepared.with_budget(prepared.problem.budget * 2)
        assert doubled.problem.budget == pytest.approx(
            2 * prepared.problem.budget
        )
        # Original untouched (frozen dataclasses).
        assert doubled.problem.budget != prepared.problem.budget

    def test_with_mean_value_rescales_proportionally(self, prepared):
        variant = prepared.with_mean_value(8_000.0)
        base = prepared.with_mean_value(4_000.0)
        assert np.allclose(
            variant.problem.population.values,
            2 * base.problem.population.values,
        )

    def test_with_mean_cost_sets_mean(self, prepared):
        variant = prepared.with_mean_cost(123.0)
        assert variant.problem.population.costs.mean() == pytest.approx(123.0)


class TestPricingComparison:
    def test_all_three_schemes_present(self, comparison):
        assert set(comparison) == {"proposed", "weighted", "uniform"}

    def test_proposed_minimizes_surrogate(self, comparison):
        proposed = comparison["proposed"].outcome.objective_gap
        for name in ("weighted", "uniform"):
            assert proposed <= comparison[name].outcome.objective_gap + 1e-12

    def test_all_schemes_respect_budget(self, comparison, prepared):
        for result in comparison.values():
            assert result.outcome.spending <= prepared.problem.budget * (
                1 + 1e-4
            )

    def test_histories_recorded(self, comparison):
        for result in comparison.values():
            assert len(result.histories) == 1
            assert result.histories[0].total_time > 0

    def test_client_utilities_higher_under_proposed(self, comparison):
        proposed = comparison["proposed"].outcome.total_client_utility
        for name in ("weighted", "uniform"):
            assert proposed >= comparison[name].outcome.total_client_utility - 1e-9

    def test_summary_serializable(self, comparison):
        from repro.utils.serialization import to_jsonable

        summary = comparison_summary(comparison)
        payload = to_jsonable(summary)
        assert set(payload) == {"proposed", "weighted", "uniform"}


class TestTables:
    def test_table2_all_times_finite(self, comparison):
        rows, targets = table2_rows({"setup1": comparison})
        assert len(rows) == 1
        for cell in rows[0][1:4]:
            assert math.isfinite(cell)

    def test_table2_target_reachable_by_all(self, comparison):
        target = reachable_loss_target(comparison)
        for result in comparison.values():
            for history in result.histories:
                assert history.final_global_loss() <= target

    def test_table3_all_times_finite(self, comparison):
        rows, _ = table3_rows({"setup1": comparison})
        for cell in rows[0][1:4]:
            assert math.isfinite(cell)

    def test_table3_target_reachable(self, comparison):
        target = reachable_accuracy_target(comparison)
        for result in comparison.values():
            for history in result.histories:
                assert history.final_test_accuracy() >= target

    def test_table4_gains_nonnegative(self, comparison):
        rows = table4_rows({"setup1": comparison})
        assert rows[0][1] >= -1e-9
        assert rows[0][2] >= -1e-9

    def test_table5_counts_nondecreasing_in_value(self, prepared):
        rows = table5_rows(prepared, mean_values=(0.0, 4_000.0, 80_000.0))
        counts = [row[1] for row in rows]
        assert counts[0] == 0  # no intrinsic value -> no one pays the server
        assert counts == sorted(counts)

    def test_speedup_percentages_math(self):
        row = ["s", 50.0, 100.0, 200.0, 0.4]
        pct = speedup_percentages(row)
        assert pct["vs_weighted_pct"] == pytest.approx(50.0)
        assert pct["vs_uniform_pct"] == pytest.approx(75.0)


class TestFigures:
    def test_fig4_series_structure(self, comparison):
        series = fig4_series(comparison)
        assert set(series) == {"proposed", "weighted", "uniform"}
        for curves in series.values():
            assert len(curves["times"]) == len(curves["loss_mean"])
            assert np.nanmax(curves["loss_mean"]) > 0

    def test_fig4_losses_decrease(self, comparison):
        series = fig4_series(comparison)
        for curves in series.values():
            losses = curves["loss_mean"]
            valid = losses[~np.isnan(losses)]
            assert valid[-1] < valid[0]

    def test_sweep_mean_value_game_only(self, prepared):
        points = sweep_mean_value(
            prepared, values=(0.0, 4_000.0), train=False
        )
        series = sweep_series(points)
        assert series["parameters"].tolist() == [0.0, 4_000.0]
        assert np.all(np.isnan(series["loss"]))  # no training requested
        assert np.all(series["mean_q"] > 0)

    def test_sweep_budget_monotone_mean_q(self, prepared):
        budgets = [
            prepared.problem.budget * f for f in (0.25, 1.0, 4.0)
        ]
        points = sweep_budget(prepared, budgets, train=False)
        mean_qs = [float(point.result.outcome.q.mean()) for point in points]
        assert mean_qs == sorted(mean_qs)  # Proposition 1 in action

    def test_sweep_with_training(self, prepared):
        points = sweep_mean_value(
            prepared, values=(4_000.0,), repeats=1, train=True
        )
        series = sweep_series(points)
        assert np.isfinite(series["loss"][0])
        assert 0 <= series["accuracy"][0] <= 1


class TestReporting:
    def test_export_comparison(self, comparison, tmp_path):
        from repro.experiments import export_comparison

        written = export_comparison(comparison, tmp_path, prefix="setup1")
        names = {path.name for path in written}
        assert "setup1_summary.json" in names
        assert "setup1_proposed_curves.csv" in names

    def test_export_sweep(self, prepared, tmp_path):
        from repro.experiments import export_sweep

        points = sweep_mean_value(prepared, values=(0.0, 100.0), train=False)
        series = sweep_series(points)
        path = export_sweep(series, tmp_path / "fig5.csv")
        content = path.read_text()
        assert content.startswith("parameter,")
        assert len(content.splitlines()) == 3
