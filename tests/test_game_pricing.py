"""Tests for pricing schemes: optimal vs uniform vs weighted."""

import numpy as np
import pytest

from repro.game import (
    OptimalPricing,
    UniformPricing,
    WeightedPricing,
    compare_schemes,
    evaluate_posted_prices,
)


class TestUniformPricing:
    def test_single_price_for_all(self, small_problem):
        outcome = UniformPricing().apply(small_problem)
        assert np.allclose(outcome.prices, outcome.prices[0])

    def test_budget_spent_exactly(self, small_problem):
        outcome = UniformPricing().apply(small_problem)
        assert outcome.spending == pytest.approx(
            small_problem.budget, rel=1e-5
        )

    def test_zero_budget_means_zero_price(self, small_population):
        from repro.game import ServerProblem

        problem = ServerProblem(
            population=small_population,
            alpha=2_000.0,
            num_rounds=200,
            budget=0.0,
        )
        outcome = UniformPricing().apply(problem)
        assert np.allclose(outcome.prices, 0.0)
        # Clients with intrinsic value still participate.
        assert outcome.q.max() > 0


class TestWeightedPricing:
    def test_prices_proportional_to_datasize(self, small_problem):
        outcome = WeightedPricing().apply(small_problem)
        weights = small_problem.population.weights
        ratios = outcome.prices / weights
        assert np.allclose(ratios, ratios[0])

    def test_budget_spent_exactly(self, small_problem):
        outcome = WeightedPricing().apply(small_problem)
        assert outcome.spending == pytest.approx(
            small_problem.budget, rel=1e-5
        )


class TestOptimalPricing:
    def test_budget_respected(self, small_problem):
        outcome = OptimalPricing().apply(small_problem)
        assert outcome.spending <= small_problem.budget * (1 + 1e-4)

    def test_equilibrium_attached(self, small_problem):
        outcome = OptimalPricing().apply(small_problem)
        assert outcome.equilibrium is not None
        assert outcome.equilibrium.method == "kkt"

    def test_msearch_variant(self, small_problem):
        outcome = OptimalPricing(method="m-search").apply(small_problem)
        assert outcome.equilibrium.method == "m-search"


class TestSchemeComparison:
    def test_optimal_dominates_benchmarks_on_bound(self, small_problem):
        """The headline claim at the surrogate level: same budget, lower
        expected loss than uniform and weighted pricing."""
        outcomes = compare_schemes(small_problem)
        proposed = outcomes["proposed"].objective_gap
        assert proposed <= outcomes["uniform"].objective_gap + 1e-9
        assert proposed <= outcomes["weighted"].objective_gap + 1e-9

    def test_optimal_dominates_across_populations(self, small_population):
        from repro.game import ServerProblem

        rng = np.random.default_rng(7)
        for trial in range(5):
            population = small_population.with_values(
                rng.exponential(30.0, size=8)
            )
            problem = ServerProblem(
                population=population,
                alpha=float(rng.uniform(500, 5_000)),
                num_rounds=200,
                budget=float(rng.uniform(10, 80)),
            )
            outcomes = compare_schemes(problem)
            assert (
                outcomes["proposed"].objective_gap
                <= outcomes["uniform"].objective_gap + 1e-9
            )
            assert (
                outcomes["proposed"].objective_gap
                <= outcomes["weighted"].objective_gap + 1e-9
            )

    def test_outcome_payments_consistent(self, small_problem):
        outcome = UniformPricing().apply(small_problem)
        assert np.allclose(outcome.payments, outcome.prices * outcome.q)

    def test_total_client_utility_field(self, small_problem):
        outcome = UniformPricing().apply(small_problem)
        assert outcome.total_client_utility == pytest.approx(
            float(outcome.client_utilities.sum())
        )


class TestEvaluatePostedPrices:
    def test_arbitrary_prices_scored(self, small_problem):
        prices = np.linspace(0, 20, 8)
        outcome = evaluate_posted_prices(small_problem, prices, "custom")
        assert outcome.scheme == "custom"
        assert outcome.q.shape == (8,)
        assert outcome.spending == pytest.approx(
            float(np.sum(prices * outcome.q))
        )
