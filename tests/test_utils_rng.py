"""Tests for deterministic RNG management."""

import numpy as np

from repro.utils.rng import RngFactory, spawn_rng


def test_same_seed_same_stream():
    a = spawn_rng(42, "x")
    b = spawn_rng(42, "x")
    assert a.random() == b.random()


def test_different_labels_different_streams():
    a = spawn_rng(42, "x")
    b = spawn_rng(42, "y")
    draws_a = a.random(8)
    draws_b = b.random(8)
    assert not np.allclose(draws_a, draws_b)


def test_different_seeds_different_streams():
    assert spawn_rng(1, "x").random() != spawn_rng(2, "x").random()


def test_nested_labels_are_independent():
    a = spawn_rng(0, "client", "1")
    b = spawn_rng(0, "client", "2")
    assert a.random() != b.random()


def test_generator_passthrough_without_labels():
    generator = np.random.default_rng(5)
    assert spawn_rng(generator) is generator


def test_generator_with_labels_derives_child():
    generator = np.random.default_rng(5)
    child = spawn_rng(generator, "sub")
    assert child is not generator


def test_factory_same_label_reproducible():
    factory = RngFactory(seed=7)
    assert factory.make("p").random() == factory.make("p").random()


def test_factory_child_differs_from_parent():
    factory = RngFactory(seed=7)
    child = factory.child("scope")
    assert factory.make("x").random() != child.make("x").random()


def test_factory_child_deterministic():
    a = RngFactory(seed=7).child("scope").make("x").random()
    b = RngFactory(seed=7).child("scope").make("x").random()
    assert a == b


def test_factory_exposes_seed():
    assert RngFactory(seed=11).seed == 11


def test_seedsequence_accepted():
    sequence = np.random.SeedSequence(9)
    a = spawn_rng(sequence, "a").random()
    b = spawn_rng(np.random.SeedSequence(9), "a").random()
    assert a == b
