"""Integration tests for the federated training loop."""

import numpy as np
import pytest

from repro.datasets import Dataset
from repro.fl import (
    BernoulliParticipation,
    FederatedTrainer,
    FixedSubsetParticipation,
    FLClient,
    FLServer,
    FullParticipation,
    ParticipantsOnlyAggregator,
)
from repro.models import MultinomialLogisticRegression, constant_schedule
from repro.utils.rng import RngFactory


class TestFLClient:
    def test_local_update_moves_params(self, small_federated, small_model):
        client = FLClient(
            0,
            small_federated.client_datasets[0],
            small_model,
            rng_factory=RngFactory(0),
        )
        start = small_model.init_params()
        out = client.local_update(start, step_size=0.05, num_steps=20)
        assert not np.allclose(out, start)

    def test_empty_dataset_rejected(self, small_model):
        empty = Dataset(
            features=np.zeros((0, 12)), labels=np.zeros(0, dtype=int),
            num_classes=4,
        )
        with pytest.raises(ValueError, match="empty"):
            FLClient(0, empty, small_model)

    def test_gradient_norm_sampling_positive(self, small_federated, small_model):
        client = FLClient(
            1, small_federated.client_datasets[1], small_model,
            rng_factory=RngFactory(1),
        )
        norms = client.sample_gradient_norms(
            small_model.init_params(), num_samples=8
        )
        assert norms.shape == (8,)
        assert np.all(norms > 0)


class TestFLServer:
    def test_weights_must_sum_to_one(self):
        with pytest.raises(ValueError, match="sum to 1"):
            FLServer(np.zeros(3), np.array([0.5, 0.2]))

    def test_round_counter(self):
        server = FLServer(np.zeros(2), np.array([0.5, 0.5]))
        server.apply_round({}, np.array([0.5, 0.5]))
        assert server.round_index == 1

    def test_params_returns_copy(self):
        server = FLServer(np.zeros(2), np.array([0.5, 0.5]))
        params = server.params
        params[0] = 42.0
        assert server.params[0] == 0.0


class TestFederatedTrainer:
    def test_full_participation_reduces_loss(self, small_federated, small_model):
        trainer = FederatedTrainer(
            small_model,
            small_federated,
            FullParticipation(small_federated.num_clients),
            local_steps=10,
            eval_every=5,
            rng_factory=RngFactory(0),
        )
        history = trainer.run(15)
        losses = history.global_losses
        valid = losses[~np.isnan(losses)]
        assert valid[-1] < valid[0]

    def test_bernoulli_participation_runs(self, small_federated, small_model):
        q = np.full(small_federated.num_clients, 0.5)
        trainer = FederatedTrainer(
            small_model,
            small_federated,
            BernoulliParticipation(q, rng=3),
            local_steps=5,
            eval_every=10,
            rng_factory=RngFactory(1),
        )
        history = trainer.run(10)
        assert history.final_global_loss() > 0

    def test_history_has_initial_record(self, small_federated, small_model):
        trainer = FederatedTrainer(
            small_model,
            small_federated,
            FullParticipation(small_federated.num_clients),
            local_steps=2,
            rng_factory=RngFactory(2),
        )
        history = trainer.run(3)
        assert history.records[0].round_index == -1
        assert history.records[0].sim_time == 0.0

    def test_round_timer_accumulates(self, small_federated, small_model):
        trainer = FederatedTrainer(
            small_model,
            small_federated,
            FullParticipation(small_federated.num_clients),
            local_steps=2,
            round_timer=lambda mask, r: 2.5,
            rng_factory=RngFactory(3),
        )
        history = trainer.run(4)
        assert history.total_time == pytest.approx(10.0)

    def test_seeded_runs_identical(self, small_federated, small_model):
        def run():
            trainer = FederatedTrainer(
                small_model,
                small_federated,
                BernoulliParticipation(
                    np.full(small_federated.num_clients, 0.6), rng=9
                ),
                local_steps=3,
                eval_every=2,
                rng_factory=RngFactory(4),
            )
            return trainer.run(6).final_global_loss()

        assert run() == run()

    def test_client_count_mismatch_rejected(self, small_federated, small_model):
        with pytest.raises(ValueError, match="clients"):
            FederatedTrainer(
                small_model,
                small_federated,
                FullParticipation(small_federated.num_clients + 1),
            )

    def test_invalid_round_count_rejected(self, small_federated, small_model):
        trainer = FederatedTrainer(
            small_model,
            small_federated,
            FullParticipation(small_federated.num_clients),
            rng_factory=RngFactory(5),
        )
        with pytest.raises(ValueError):
            trainer.run(0)


class TestConvergenceToOptimum:
    def test_full_participation_approaches_pooled_optimum(self):
        """FedAvg with full participation must solve the global problem."""
        from repro.datasets import synthetic_federated
        from repro.models import ExponentialDecaySchedule, gradient_descent

        fed = synthetic_federated(
            num_clients=4, total_samples=600, dim=8, num_classes=3, rng=5
        )
        model = MultinomialLogisticRegression(8, 3, l2=0.05)
        pooled = fed.pooled_train()
        optimum = gradient_descent(
            model, pooled.features, pooled.labels, num_steps=2000
        )
        f_star = model.loss(optimum, pooled.features, pooled.labels)

        trainer = FederatedTrainer(
            model,
            fed,
            FullParticipation(4),
            local_steps=10,
            batch_size=32,
            schedule=ExponentialDecaySchedule(initial=0.2, decay=0.97),
            eval_every=20,
            rng_factory=RngFactory(6),
        )
        history = trainer.run(120)
        assert history.final_global_loss() - f_star < 0.02

    def test_fixed_subset_converges_to_biased_model(self):
        """Deterministic-subset incentives (refs [7]-[14]) yield a biased
        model: training only client 0 fits client 0's data, not the global
        objective — the failure mode the paper's mechanism removes."""
        from repro.datasets import synthetic_federated
        from repro.models import gradient_descent

        fed = synthetic_federated(
            num_clients=4, total_samples=800, dim=8, num_classes=3,
            alpha=2.0, beta=2.0, rng=6,
        )
        model = MultinomialLogisticRegression(8, 3, l2=0.05)
        pooled = fed.pooled_train()
        optimum = gradient_descent(
            model, pooled.features, pooled.labels, num_steps=2000
        )
        f_star = model.loss(optimum, pooled.features, pooled.labels)

        trainer = FederatedTrainer(
            model,
            fed,
            FixedSubsetParticipation(4, subset=[0]),
            aggregator=ParticipantsOnlyAggregator(),
            local_steps=20,
            batch_size=32,
            schedule=constant_schedule(0.1),
            eval_every=20,
            rng_factory=RngFactory(7),
        )
        history = trainer.run(60)
        # Substantially above the global optimum: the bias is real.
        assert history.final_global_loss() - f_star > 0.05
