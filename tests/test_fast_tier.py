"""Tests for the fast tier: dtype threading, sub-sampled evaluation,
and the approximate equilibrium solvers.

The fast tier's contract is *statistical equivalence*, not digest
equality: float32 fused rounds and sub-sampled evaluation must land
within pinned tolerance bands of the exact float64 path, while the
exact path itself stays bit-identical (its digest pins live in the
backend/checkpoint suites; here we assert the fast knobs leave it
untouched).
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.datasets import synthetic_federated
from repro.fl import BernoulliParticipation, CheckpointConfig, FederatedTrainer
from repro.fl.trainer import (
    FAST_FALLBACK_CHUNK,
    PRECISIONS,
    select_fast_chunk_size,
)
from repro.game import ServerProblem, solve_stage1_kkt
from repro.game.client_model import sample_population
from repro.game.pricing import UniformPricing, WeightedPricing
from repro.game.server_problem import solve_stage1_approx
from repro.models import MultinomialLogisticRegression
from repro.models.metrics import (
    draw_evaluation_panel,
    global_loss,
    subsampled_global_loss,
)
from repro.utils.rng import RngFactory

NUM_ROUNDS = 8

#: |fast final loss - exact final loss| band, relative to the exact loss
#: scale (matches the fuzz catalog's FAST_LOSS_RTOL).
LOSS_RTOL = 0.05

#: (backend, chunk_size) grid the fast tier must stay in-band across.
ENGINES = [("vectorized", None), ("vectorized", 2), ("loop", None)]


def make_trainer(
    *,
    precision="float64",
    fast=False,
    backend="vectorized",
    chunk_size=None,
    seed=5,
):
    federated = synthetic_federated(
        num_clients=6, total_samples=720, dim=10, num_classes=3, rng=7
    )
    factory = RngFactory(seed)
    q = np.linspace(0.4, 0.9, federated.num_clients)
    model = MultinomialLogisticRegression(
        num_features=federated.num_features,
        num_classes=federated.num_classes,
        l2=1e-2,
    )
    return FederatedTrainer(
        model,
        federated,
        BernoulliParticipation(q, rng=factory.make("participation")),
        local_steps=2,
        batch_size=8,
        eval_every=2,
        rng_factory=factory,
        backend=backend,
        chunk_size=chunk_size,
        precision=precision,
        fast=fast,
    )


def final_loss(history) -> float:
    loss = history.final_global_loss()
    assert np.isfinite(loss)
    return loss


class TestDtypeThreading:
    def test_unknown_precision_rejected(self):
        with pytest.raises(ValueError, match="precision"):
            make_trainer(precision="float16")

    def test_dtype_follows_precision(self):
        for precision in PRECISIONS:
            trainer = make_trainer(precision=precision)
            assert trainer.dtype == np.dtype(precision)

    def test_float32_tracks_exact_loss(self):
        exact = final_loss(make_trainer().run(NUM_ROUNDS))
        fast = final_loss(make_trainer(precision="float32").run(NUM_ROUNDS))
        assert abs(fast - exact) <= LOSS_RTOL * max(1.0, abs(exact))

    def test_exact_path_stays_deterministic(self):
        first = make_trainer().run(NUM_ROUNDS)
        second = make_trainer().run(NUM_ROUNDS)
        assert first.digest() == second.digest()
        trainer = make_trainer()
        trainer.run(NUM_ROUNDS)
        assert trainer.last_subsampled_loss is None


class TestFastTierTolerance:
    @pytest.mark.parametrize("backend,chunk_size", ENGINES)
    def test_fast_in_band_across_engines(self, backend, chunk_size):
        exact = final_loss(make_trainer().run(NUM_ROUNDS))
        fast = final_loss(
            make_trainer(
                precision="float32",
                fast=True,
                backend=backend,
                chunk_size=chunk_size,
            ).run(NUM_ROUNDS)
        )
        assert abs(fast - exact) <= LOSS_RTOL * max(1.0, abs(exact))

    def test_fast_tier_is_deterministic(self):
        first = make_trainer(precision="float32", fast=True).run(NUM_ROUNDS)
        second = make_trainer(precision="float32", fast=True).run(NUM_ROUNDS)
        assert first.digest() == second.digest()

    def test_phase_timings_accumulate(self):
        trainer = make_trainer(precision="float32", fast=True)
        trainer.run(NUM_ROUNDS)
        assert trainer.phase_timings["train_s"] > 0.0
        assert trainer.phase_timings["eval_s"] > 0.0


class TestCheckpointPrecision:
    def _config(self, tmp_path):
        return CheckpointConfig(
            directory=tmp_path, every=2, resume=True, keep=2
        )

    def _interrupted_run(self, tmp_path, kill_round=NUM_ROUNDS - 2):
        class _Killed(BaseException):
            pass

        trainer = make_trainer(precision="float32", fast=True)
        base = trainer.round_timer

        def timer(mask, round_index):
            if round_index == kill_round:
                raise _Killed()
            return base(mask, round_index)

        trainer.round_timer = timer
        with pytest.raises(_Killed):
            trainer.run(NUM_ROUNDS, checkpoint=self._config(tmp_path))

    def test_float32_resume_matches_uninterrupted(self, tmp_path):
        reference = make_trainer(precision="float32", fast=True).run(
            NUM_ROUNDS
        )
        self._interrupted_run(tmp_path)
        resumed = make_trainer(precision="float32", fast=True).run(
            NUM_ROUNDS, checkpoint=self._config(tmp_path)
        )
        assert resumed.digest() == reference.digest()

    def test_precision_mismatch_rejected(self, tmp_path):
        self._interrupted_run(tmp_path)
        with pytest.raises(ValueError, match="precision"):
            make_trainer().run(
                NUM_ROUNDS, checkpoint=self._config(tmp_path)
            )


def big_problem(num_clients=400, seed=11):
    rng = np.random.default_rng(seed)
    weights = rng.uniform(0.5, 1.5, num_clients)
    population = sample_population(
        weights / weights.sum(),
        rng.uniform(5.0, 15.0, num_clients),
        mean_cost=0.1,
        mean_value=0.2,
        q_max=0.95,
        rng=rng,
    )
    return ServerProblem(
        population=population,
        alpha=2000.0,
        num_rounds=100,
        budget=0.05 * num_clients,
    )


class TestApproxEquilibrium:
    def test_tracks_kkt_prices(self, small_problem):
        exact = solve_stage1_kkt(small_problem)
        approx = solve_stage1_approx(small_problem)
        scale = max(float(np.abs(exact.prices).max()), 1e-9)
        err = float(np.max(np.abs(approx.prices - exact.prices))) / scale
        assert err <= 1e-3
        assert approx.method == "approx"

    def test_tracks_kkt_prices_at_scale(self):
        problem = big_problem()
        exact = solve_stage1_kkt(problem)
        approx = solve_stage1_approx(problem)
        scale = max(float(np.abs(exact.prices).max()), 1e-9)
        err = float(np.max(np.abs(approx.prices - exact.prices))) / scale
        assert err <= 1e-3

    def test_never_overspends(self, small_problem):
        approx = solve_stage1_approx(small_problem)
        slack = 1e-5 * max(1.0, small_problem.budget)
        assert float(small_problem.spending(approx.q)) <= (
            small_problem.budget + slack
        )

    def test_slack_budget_returns_caps(self, small_population):
        problem = ServerProblem(
            population=small_population,
            alpha=5_000.0,
            num_rounds=200,
            budget=1e9,
        )
        approx = solve_stage1_approx(problem)
        assert not approx.budget_tight
        assert np.allclose(approx.q, small_population.q_max)

    @pytest.mark.parametrize("scheme_cls", [UniformPricing, WeightedPricing])
    def test_approx_pricing_tracks_exact(self, scheme_cls):
        problem = big_problem()
        exact = scheme_cls().apply(problem)
        approx = scheme_cls(method="approx").apply(problem)
        scale = max(float(np.abs(exact.prices).max()), 1e-9)
        err = float(np.max(np.abs(approx.prices - exact.prices))) / scale
        assert err <= 1e-2
        assert float(problem.spending(approx.q)) <= problem.budget * (
            1.0 + 1e-9
        )

    @pytest.mark.parametrize("scheme_cls", [UniformPricing, WeightedPricing])
    def test_unknown_method_rejected(self, scheme_cls):
        with pytest.raises(ValueError, match="method"):
            scheme_cls(method="bogus")


class TestSubsampledEvaluation:
    def _setup(self):
        federated = synthetic_federated(
            num_clients=40, total_samples=2000, dim=8, num_classes=3, rng=3
        )
        model = MultinomialLogisticRegression(
            num_features=federated.num_features,
            num_classes=federated.num_classes,
            l2=1e-2,
        )
        params = model.init_params()
        return federated, model, params

    def test_panel_is_deterministic(self):
        weights = np.random.default_rng(1).uniform(0.5, 1.5, 40)
        weights /= weights.sum()
        first = draw_evaluation_panel(
            weights, 64, np.random.default_rng(9)
        )
        second = draw_evaluation_panel(
            weights, 64, np.random.default_rng(9)
        )
        assert np.array_equal(first.client_ids, second.client_ids)
        assert np.array_equal(first.counts, second.counts)
        assert first.counts.sum() == first.sample_size == 64

    def test_estimate_brackets_exact_loss(self):
        federated, model, params = self._setup()
        weights = np.asarray(federated.sizes, dtype=float)
        weights /= weights.sum()
        panel = draw_evaluation_panel(
            weights, 512, np.random.default_rng(4)
        )
        estimate = subsampled_global_loss(model, params, federated, panel)
        exact = global_loss(model, params, federated)
        assert estimate.half_width >= 0.0
        # Normal-theory 95% interval, generous 3x slop for the tiny panel.
        assert abs(estimate.estimate - exact) <= max(
            3.0 * estimate.half_width, 0.05 * abs(exact)
        )

    def test_bad_panel_inputs_rejected(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError, match="weights"):
            draw_evaluation_panel(np.empty(0), 8, rng)
        with pytest.raises(ValueError, match="sample_size"):
            draw_evaluation_panel(np.ones(4), 0, rng)


class TestKernelSelection:
    def test_committed_profile_selects_width(self):
        size = select_fast_chunk_size()
        assert isinstance(size, int) and size >= 1

    def test_missing_profile_falls_back(self, tmp_path):
        assert (
            select_fast_chunk_size(tmp_path / "absent.json")
            == FAST_FALLBACK_CHUNK
        )

    def test_malformed_profile_falls_back(self, tmp_path):
        path = tmp_path / "sweep.json"
        path.write_text(json.dumps({"rows": [{"stack_size": 0}]}))
        assert select_fast_chunk_size(path) == FAST_FALLBACK_CHUNK
