"""Tests for the ASCII table renderer."""

import pytest

from repro.utils.tables import render_table


def test_basic_rendering():
    table = render_table(["a", "b"], [[1, 2], [3, 4]])
    lines = table.splitlines()
    assert lines[0].split("|")[0].strip() == "a"
    assert "1" in lines[2] and "4" in lines[3]


def test_title_rendered_first():
    table = render_table(["x"], [[1]], title="My Table")
    assert table.splitlines()[0] == "My Table"


def test_float_formatting():
    table = render_table(["v"], [[1234.5678]], float_format=",.1f")
    assert "1,234.6" in table


def test_bool_formatting():
    table = render_table(["ok"], [[True], [False]])
    assert "yes" in table and "no" in table


def test_column_alignment():
    table = render_table(["name", "n"], [["long-name", 1], ["s", 22]])
    lines = table.splitlines()
    # All rows share the same separator column position.
    positions = {line.index("|") for line in lines if "|" in line}
    assert len(positions) == 1


def test_row_length_mismatch_raises():
    with pytest.raises(ValueError, match="cells"):
        render_table(["a", "b"], [[1]])
