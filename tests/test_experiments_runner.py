"""Tests for the experiment runner's result containers and determinism."""

import math

import numpy as np
import pytest

from repro.experiments import (
    SCALES,
    SETUP1,
    apply_scale,
    prepare_setup,
    render_negative_payment_table,
    render_time_table,
    render_utility_table,
    run_history,
)
from repro.experiments.runner import SchemeResult
from repro.game import UniformPricing


@pytest.fixture(scope="module")
def prepared():
    scale = SCALES["ci"]
    config = apply_scale(SETUP1, scale)
    return prepare_setup(config, scale=scale, seed=2)


class TestRunHistory:
    def test_deterministic_for_same_seed(self, prepared):
        q = np.full(prepared.federated.num_clients, 0.5)
        a = run_history(prepared, q, seed=3)
        b = run_history(prepared, q, seed=3)
        assert a.final_global_loss() == b.final_global_loss()
        assert a.total_time == b.total_time

    def test_different_seeds_differ(self, prepared):
        q = np.full(prepared.federated.num_clients, 0.5)
        a = run_history(prepared, q, seed=3)
        b = run_history(prepared, q, seed=4)
        assert a.final_global_loss() != b.final_global_loss()

    def test_q_clipped_away_from_zero(self, prepared):
        """Even a degenerate q vector must produce a valid run (the trainer
        needs q_n > 0 for unbiased aggregation)."""
        q = np.zeros(prepared.federated.num_clients)
        history = run_history(prepared, q, seed=0)
        assert history.total_time > 0


class TestSchemeResult:
    @pytest.fixture()
    def result(self, prepared):
        outcome = UniformPricing().apply(prepared.problem)
        result = SchemeResult(outcome=outcome)
        for seed in range(2):
            result.histories.append(run_history(prepared, outcome.q, seed=seed))
        return result

    def test_mean_final_metrics(self, result):
        losses = [h.final_global_loss() for h in result.histories]
        assert result.mean_final_loss() == pytest.approx(np.mean(losses))
        accuracies = [h.final_test_accuracy() for h in result.histories]
        assert result.mean_final_accuracy() == pytest.approx(
            np.mean(accuracies)
        )

    def test_mean_time_to_unreachable_target_is_inf(self, result):
        assert math.isinf(result.mean_time_to_loss(0.0))
        assert math.isinf(result.mean_time_to_accuracy(1.01))

    def test_snapshot_queries(self, result):
        horizon = min(h.total_time for h in result.histories)
        loss = result.loss_at_time(0.8 * horizon)
        accuracy = result.accuracy_at_time(0.8 * horizon)
        assert np.isfinite(loss)
        assert 0 <= accuracy <= 1

    def test_curves_grid_shared(self, result):
        curves = result.curves
        assert curves["times"][0] == 0.0
        assert len(curves["times"]) == len(curves["accuracy_mean"])


class TestRenderers:
    def test_time_table_renders(self):
        rows = [["setup1", 1.0, 2.0, 3.0, 0.5]]
        text = render_time_table(rows, metric="loss")
        assert "proposed" in text and "uniform" in text and "setup1" in text

    def test_utility_table_renders(self):
        text = render_utility_table([["setup1", 10.0, 20.0]])
        assert "gain vs uniform" in text

    def test_negative_payment_table_renders(self):
        text = render_negative_payment_table([[0.0, 0, math.inf]])
        assert "P_n < 0" in text
