"""Tests for SGD, deterministic GD, and learning-rate schedules."""

import numpy as np
import pytest

from repro.models import (
    ExponentialDecaySchedule,
    MultinomialLogisticRegression,
    RidgeRegression,
    constant_schedule,
    gradient_descent,
    sgd_steps,
    theorem1_schedule,
)


@pytest.fixture()
def ridge_problem():
    rng = np.random.default_rng(0)
    features = rng.normal(size=(50, 4))
    targets = features @ np.array([0.5, -1.0, 2.0, 0.0]) + 1.0
    model = RidgeRegression(4, l2=0.05)
    return model, features, targets


class TestSchedules:
    def test_theorem1_formula(self):
        schedule = theorem1_schedule(2.0, 0.1, 10)
        # offset = max(16, 1) = 16 -> eta_0 = 2/16
        assert schedule(0) == pytest.approx(2.0 / 16.0)
        assert schedule(10) == pytest.approx(2.0 / 17.0)

    def test_theorem1_decreasing(self):
        schedule = theorem1_schedule(3.0, 0.2, 5)
        values = [schedule(r) for r in range(20)]
        assert all(a > b for a, b in zip(values, values[1:]))

    def test_exponential_decay(self):
        schedule = ExponentialDecaySchedule(initial=0.1, decay=0.996)
        assert schedule(0) == pytest.approx(0.1)
        assert schedule(100) == pytest.approx(0.1 * 0.996**100)

    def test_constant_schedule(self):
        schedule = constant_schedule(0.05)
        assert schedule(0) == schedule(999) == 0.05

    def test_invalid_schedules_rejected(self):
        with pytest.raises(ValueError):
            theorem1_schedule(-1.0, 0.1, 5)
        with pytest.raises(ValueError):
            ExponentialDecaySchedule(initial=0.0)


class TestSgd:
    def test_sgd_decreases_loss(self, ridge_problem):
        model, features, targets = ridge_problem
        start = model.init_params()
        out = sgd_steps(
            model,
            start,
            features,
            targets,
            step_size=0.05,
            num_steps=100,
            batch_size=8,
            rng=0,
        )
        assert model.loss(out, features, targets) < model.loss(
            start, features, targets
        )

    def test_sgd_does_not_mutate_input(self, ridge_problem):
        model, features, targets = ridge_problem
        start = model.init_params()
        before = start.copy()
        sgd_steps(
            model,
            start,
            features,
            targets,
            step_size=0.05,
            num_steps=10,
            batch_size=8,
            rng=0,
        )
        assert np.array_equal(start, before)

    def test_sgd_reproducible_with_seed(self, ridge_problem):
        model, features, targets = ridge_problem
        kwargs = dict(step_size=0.05, num_steps=20, batch_size=8)
        a = sgd_steps(model, model.init_params(), features, targets, rng=7, **kwargs)
        b = sgd_steps(model, model.init_params(), features, targets, rng=7, **kwargs)
        assert np.array_equal(a, b)

    def test_sgd_batch_larger_than_dataset_ok(self, ridge_problem):
        model, features, targets = ridge_problem
        out = sgd_steps(
            model,
            model.init_params(),
            features[:5],
            targets[:5],
            step_size=0.01,
            num_steps=5,
            batch_size=100,
            rng=0,
        )
        assert out.shape == (model.num_params,)

    def test_sgd_invalid_args(self, ridge_problem):
        model, features, targets = ridge_problem
        with pytest.raises(ValueError):
            sgd_steps(
                model, model.init_params(), features, targets,
                step_size=0.0, num_steps=1, batch_size=1,
            )
        with pytest.raises(ValueError):
            sgd_steps(
                model, model.init_params(), features, targets,
                step_size=0.1, num_steps=0, batch_size=1,
            )


class TestGradientDescent:
    def test_reaches_closed_form_optimum(self, ridge_problem):
        model, features, targets = ridge_problem
        solution = gradient_descent(model, features, targets, num_steps=3000)
        reference = model.closed_form_optimum(features, targets)
        assert np.allclose(solution, reference, atol=1e-4)

    def test_logistic_gd_monotone_descent(self):
        rng = np.random.default_rng(1)
        features = rng.normal(size=(80, 6))
        labels = rng.integers(0, 4, size=80)
        model = MultinomialLogisticRegression(6, 4, l2=0.01)
        losses = []
        params = model.init_params()
        smoothness, _ = model.smoothness_constants(features)
        for _ in range(10):
            losses.append(model.loss(params, features, labels))
            params = gradient_descent(
                model,
                features,
                labels,
                num_steps=10,
                step_size=1.0 / smoothness,
                init=params,
            )
        assert all(a >= b - 1e-12 for a, b in zip(losses, losses[1:]))
