#!/usr/bin/env python
"""Measure the megafleet-train scenario end to end and archive the result.

Runs the registry's ``megafleet-train`` scenario (10k clients, streaming
shards, chunked rounds) across the full mechanism suite at the given
scale, recording wall-clock, the process's peak RSS, and the per-mechanism
training metrics into
``benchmarks/results/bench/megafleet_train_<scale>.json``. This is the
acceptance artifact for the memory-bounded training pipeline: a fleet
250x the paper's trains within a laptop-class memory budget.

Usage::

    PYTHONPATH=src python tools/measure_megafleet.py [--scale ci] [--seed 0]
"""

from __future__ import annotations

import argparse
import resource
import sys
import time
from pathlib import Path


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", default="ci")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--scenario", default="megafleet-train")
    args = parser.parse_args(argv)

    from repro.scenarios import ScenarioRunner, get_scenario
    from repro.scenarios.runner import nonfinite_metrics
    from repro.utils.serialization import save_json

    spec = get_scenario(args.scenario)
    runner = ScenarioRunner(scale=args.scale, seed=args.seed)
    start = time.perf_counter()
    cells = runner.run(spec)
    wall_s = time.perf_counter() - start
    peak_rss_kib = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    bad = nonfinite_metrics(cells)

    config = runner.prepare(spec).config
    payload = {
        "command": "PYTHONPATH=src python tools/measure_megafleet.py "
        f"--scale {args.scale} --seed {args.seed}",
        "scenario": spec.name,
        "scale": args.scale,
        "seed": args.seed,
        "num_clients": config.num_clients,
        "total_samples": config.total_samples,
        "num_rounds": config.num_rounds,
        "wall_s": wall_s,
        "peak_rss_kib": int(peak_rss_kib),
        "nonfinite_metrics": bad,
        "cells": [
            {
                "mechanism": cell.mechanism,
                "metrics": dict(cell.metrics),
            }
            for cell in cells
        ],
    }
    out = (
        Path("benchmarks")
        / "results"
        / "bench"
        / f"megafleet_train_{args.scale}.json"
    )
    out.parent.mkdir(parents=True, exist_ok=True)
    save_json(payload, out)
    print(
        f"{spec.name} @ {args.scale}: {config.num_clients} clients, "
        f"{wall_s:.1f}s, peak RSS {peak_rss_kib / 1024:.0f} MiB "
        f"-> {out}"
    )
    return 1 if bad else 0


if __name__ == "__main__":
    sys.exit(main())
