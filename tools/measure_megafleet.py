#!/usr/bin/env python
"""Measure a megafleet scenario end to end and archive the result.

Runs a registered scenario (default ``megafleet-train``: 10k clients,
streaming shards, chunked rounds) across the full mechanism suite at the
given scale, recording wall-clock, the process's peak RSS, the kernel
configuration (backend, chunk size, dtype, tier), and the per-mechanism
metrics into
``benchmarks/results/bench/<scenario>_<scale>[_fast].json``. This is the
acceptance artifact for the scale pipelines: the memory-bounded trainer
(``megafleet-train``) and the fast tier (``--fast``, or the inherently
fast ``megafleet-100k`` game-only scenario).

The ``_fast`` filename suffix appears only when the fast tier is
requested via ``--fast``, so exact-tier baselines are never overwritten
by fast-tier runs of the same scenario.

Usage::

    PYTHONPATH=src python tools/measure_megafleet.py [--scale ci]
        [--seed 0] [--scenario megafleet-train] [--backend vectorized]
        [--chunk-size N] [--precision float64|float32] [--fast]
        [--algorithm fedprox:mu=0.05]
"""

from __future__ import annotations

import argparse
import dataclasses
import resource
import sys
import time
from pathlib import Path


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", default="ci")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--scenario", default="megafleet-train")
    parser.add_argument(
        "--backend",
        choices=("vectorized", "loop"),
        default="vectorized",
        help="local-SGD engine for train scenarios",
    )
    parser.add_argument(
        "--chunk-size",
        type=int,
        default=None,
        help="memory-bounded stack width (default: trainer's choice)",
    )
    parser.add_argument(
        "--precision",
        choices=("float64", "float32"),
        default="float64",
        help="kernel dtype for train scenarios",
    )
    parser.add_argument(
        "--fast",
        action="store_true",
        help="run on the fast tier (fused float32 rounds, sub-sampled "
        "evaluation, approximate equilibrium solvers)",
    )
    parser.add_argument(
        "--algorithm",
        default=None,
        metavar="KIND[:P=V,...]",
        help="local-update rule for train scenarios (fedavg default; "
        "fedprox/feddyn/server_momentum; overrides the scenario's own)",
    )
    args = parser.parse_args(argv)

    from repro.algorithms import coerce_algorithm
    from repro.experiments.orchestrator import ExperimentOrchestrator
    from repro.game.mechanisms import default_mechanisms
    from repro.scenarios import ScenarioRunner, get_scenario
    from repro.scenarios.runner import nonfinite_metrics
    from repro.utils.serialization import save_json

    spec = get_scenario(args.scenario)
    fast = args.fast or spec.fast
    # The flag overrides the scenario's own rule (by rewriting the spec
    # the runner sees); otherwise the scenario's own (possibly None =
    # plain FedAvg) applies.
    if args.algorithm is not None:
        if not spec.train:
            parser.error(
                f"--algorithm selects the training rule; scenario "
                f"{spec.name!r} is game-only (train=False)"
            )
        spec = dataclasses.replace(
            spec, algorithm=coerce_algorithm(args.algorithm)
        )
    algorithm = coerce_algorithm(spec.algorithm)
    orchestrator = None
    if spec.train:
        orchestrator = ExperimentOrchestrator(
            jobs=1,
            backend=args.backend,
            chunk_size=args.chunk_size,
            precision=args.precision,
            fast=fast,
            algorithm=algorithm,
        )
    runner = ScenarioRunner(
        scale=args.scale, seed=args.seed, orchestrator=orchestrator
    )
    mechanisms = default_mechanisms(fast=fast)
    start = time.perf_counter()
    cells = runner.run(spec, mechanisms)
    wall_s = time.perf_counter() - start
    peak_rss_kib = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    bad = nonfinite_metrics(cells)

    command = (
        "PYTHONPATH=src python tools/measure_megafleet.py "
        f"--scale {args.scale} --seed {args.seed} "
        f"--scenario {args.scenario}"
    )
    if args.backend != "vectorized":
        command += f" --backend {args.backend}"
    if args.chunk_size is not None:
        command += f" --chunk-size {args.chunk_size}"
    if args.precision != "float64":
        command += f" --precision {args.precision}"
    if args.fast:
        command += " --fast"
    if args.algorithm is not None:
        command += f" --algorithm {algorithm.canonical()}"
    config = runner.prepare(spec).config
    payload = {
        "command": command,
        "scenario": spec.name,
        "scale": args.scale,
        "seed": args.seed,
        "backend": args.backend,
        "chunk_size": args.chunk_size,
        "dtype": args.precision,
        "fast": fast,
        "algorithm": algorithm.canonical(),
        "num_clients": config.num_clients,
        "total_samples": config.total_samples,
        "num_rounds": config.num_rounds,
        "wall_s": wall_s,
        "peak_rss_kib": int(peak_rss_kib),
        "nonfinite_metrics": bad,
        "cells": [
            {
                "mechanism": cell.mechanism,
                "metrics": dict(cell.metrics),
            }
            for cell in cells
        ],
    }
    stem = spec.name.replace("-", "_")
    suffix = "_fast" if args.fast else ""
    if args.algorithm is not None and not algorithm.is_default:
        # Explicit-flag runs archive beside the scenario's own baseline,
        # keyed by kind, so baselines are never overwritten.
        suffix += f"_{algorithm.kind}"
    out = (
        Path("benchmarks")
        / "results"
        / "bench"
        / f"{stem}_{args.scale}{suffix}.json"
    )
    out.parent.mkdir(parents=True, exist_ok=True)
    save_json(payload, out)
    print(
        f"{spec.name} @ {args.scale}: {config.num_clients} clients, "
        f"{wall_s:.1f}s, peak RSS {peak_rss_kib / 1024:.0f} MiB "
        f"-> {out}"
    )
    return 1 if bad else 0


if __name__ == "__main__":
    sys.exit(main())
