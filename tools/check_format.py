#!/usr/bin/env python
"""Enforced, dependency-free format gate for the repository's Python tree.

``ruff format --check`` remains the aspirational formatter gate, but ruff
is not installable in the reference dev container (no network), so its
exact opinion cannot be verified before a push. This checker enforces the
*mechanically decidable subset* of the house style (ruff.toml: 88-column
double-quoted 4-space style) with nothing beyond the standard library, so
the same gate runs identically in the container and in CI:

* files decode as UTF-8, use LF line endings, and end with exactly one
  trailing newline;
* no trailing whitespace, no tab characters;
* no line longer than 88 columns;
* string literals prefer double quotes (the formatter's normalization:
  any single-quoted string not containing a double quote).

The tree is kept clean under this gate (the PR-5 sweep); CI runs it as a
blocking step, with the full ``ruff format --check`` still advisory on
top until a ruff-capable environment has run the formatter once.

Usage::

    python tools/check_format.py [ROOT]
"""

from __future__ import annotations

import io
import sys
import tokenize
from pathlib import Path

MAX_COLUMNS = 88

#: Directories never scanned (VCS internals, caches, build output,
#: virtualenvs).
SKIP_PARTS = {
    "__pycache__",
    "build",
    "dist",
    "venv",
    "node_modules",
}


def iter_python_files(root: Path):
    """Every tracked-tree ``.py`` file under ``root``, skipping caches.

    Dot-directories (``.git``, ``.venv``, ``.tox``, ``.ruff_cache``, ...)
    are skipped wholesale: an in-tree virtualenv must not fail the gate
    on third-party files.
    """
    for path in sorted(root.rglob("*.py")):
        parts = path.relative_to(root).parts
        if SKIP_PARTS.intersection(parts):
            continue
        if any(part.startswith(".") for part in parts):
            continue
        yield path


def check_file(path: Path) -> list:
    """Return ``"path:line: message"`` strings for every violation."""
    problems = []
    raw = path.read_bytes()
    try:
        text = raw.decode("utf-8")
    except UnicodeDecodeError as error:
        return [f"{path}: not valid UTF-8 ({error})"]
    if b"\r" in raw:
        problems.append(f"{path}: CR line endings (use LF)")
    if raw and not raw.endswith(b"\n"):
        problems.append(f"{path}: missing trailing newline")
    if raw.endswith(b"\n\n"):
        problems.append(f"{path}: multiple trailing newlines")
    for number, line in enumerate(text.splitlines(), start=1):
        if "\t" in line:
            problems.append(f"{path}:{number}: tab character")
        if line != line.rstrip():
            problems.append(f"{path}:{number}: trailing whitespace")
        if len(line) > MAX_COLUMNS:
            problems.append(
                f"{path}:{number}: line is {len(line)} columns "
                f"(max {MAX_COLUMNS})"
            )
    problems.extend(check_quote_style(path, text))
    return problems


def check_quote_style(path: Path, text: str) -> list:
    """Flag single-quoted strings the formatter would rewrite.

    Mirrors the formatter's quote normalization: a single-quoted,
    non-triple string whose body contains no double quote becomes
    double-quoted. Strings that *do* contain a double quote are left
    alone (rewriting them would need escapes). F-strings are skipped on
    every interpreter: Python 3.12 tokenizes them as FSTRING_* tokens
    while older versions emit STRING, and the gate must behave
    identically everywhere — version-dependent verdicts would let a tree
    pass in CI and fail in the dev container.
    """
    problems = []
    try:
        tokens = tokenize.generate_tokens(io.StringIO(text).readline)
        for token in tokens:
            if token.type != tokenize.STRING:
                continue
            prefix = token.string[: len(token.string)
                                  - len(token.string.lstrip("rRbBfFuU"))]
            if "f" in prefix.lower():
                continue
            body = token.string[len(prefix):]
            if (
                body.startswith("'")
                and not body.startswith("'''")
                and '"' not in body[1:-1]
            ):
                problems.append(
                    f"{path}:{token.start[0]}: single-quoted string "
                    "(house style is double quotes)"
                )
    except (tokenize.TokenError, IndentationError, SyntaxError) as error:
        problems.append(f"{path}: not tokenizable ({error})")
    return problems


def main(argv: list) -> int:
    root = Path(argv[1]) if len(argv) > 1 else Path(".")
    problems = []
    count = 0
    for path in iter_python_files(root):
        count += 1
        problems.extend(check_file(path))
    if problems:
        for problem in problems:
            print(problem, file=sys.stderr)
        print(
            f"check_format: {len(problems)} problem(s) across "
            f"{count} files",
            file=sys.stderr,
        )
        return 1
    print(f"check_format: {count} files clean")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
