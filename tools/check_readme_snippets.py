#!/usr/bin/env python
"""Execute every ```python code block in README.md and fail on any error.

Keeps the quickstart honest: if an API in the README drifts from the code,
CI goes red. Blocks run in one shared namespace, in order, from the repo
root, with ``REPRO_SCALE=ci`` so everything finishes in seconds.

Usage::

    PYTHONPATH=src python tools/check_readme_snippets.py [README.md]
"""

from __future__ import annotations

import os
import re
import sys
from pathlib import Path

_BLOCK = re.compile(r"```python\n(.*?)```", re.DOTALL)


def main(argv: list) -> int:
    os.environ.setdefault("REPRO_SCALE", "ci")
    readme = Path(argv[1]) if len(argv) > 1 else Path("README.md")
    text = readme.read_text(encoding="utf-8")
    blocks = _BLOCK.findall(text)
    if not blocks:
        print(f"{readme}: no python code blocks found", file=sys.stderr)
        return 1
    namespace: dict = {}
    for index, block in enumerate(blocks, start=1):
        print(f"-- executing block {index}/{len(blocks)} "
              f"({len(block.splitlines())} lines)")
        try:
            exec(compile(block, f"{readme}#block{index}", "exec"), namespace)
        except Exception as error:  # noqa: BLE001 - report and fail
            print(f"{readme} block {index} failed: {error!r}",
                  file=sys.stderr)
            print(block, file=sys.stderr)
            return 1
    print(f"{readme}: all {len(blocks)} python blocks executed cleanly")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
