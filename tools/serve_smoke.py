#!/usr/bin/env python3
"""CI smoke test for the pricing service: boot, mixed batch, shutdown.

Boots ``python -m repro.experiments serve`` as a real subprocess on an
ephemeral port, drives every endpoint from a stdlib client, and asserts:

* every response is a schema-valid versioned envelope
  (``repro.schemas.check_envelope``) whose trace satisfies the
  observability contract,
* solver responses carry the population fingerprint,
* a warm repeat of a pricing request is a cache hit that skips the
  ``solve`` stage and is byte-identical (modulo trace) to the cold one,
* malformed requests come back as 4xx ``error/v1`` envelopes,
* SIGINT shuts the server down cleanly (exit 0, no traceback).

Run it locally with ``PYTHONPATH=src REPRO_SCALE=ci python
tools/serve_smoke.py``; exits non-zero on the first violation.
"""

import json
import os
import re
import signal
import subprocess
import sys
import time
import urllib.error
import urllib.request

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro import schemas  # noqa: E402
from repro.observability import check_metrics_snapshot, check_trace  # noqa: E402


def call(port, method, path, body=None):
    data = None if body is None else json.dumps(body).encode()
    request = urllib.request.Request(
        f"http://127.0.0.1:{port}{path}",
        data=data,
        method=method,
        headers={"Content-Type": "application/json"} if data else {},
    )
    try:
        with urllib.request.urlopen(request, timeout=120) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


def main() -> int:
    env = dict(os.environ)
    env.setdefault("REPRO_SCALE", "ci")
    env["PYTHONPATH"] = "src" + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    server = subprocess.Popen(
        [sys.executable, "-m", "repro.experiments", "serve", "--port", "0"],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        env=env,
    )
    try:
        ready = server.stdout.readline().decode()
        match = re.search(r"http://[^:]+:(\d+)", ready)
        assert match, f"no ready line from the server: {ready!r}"
        port = int(match.group(1))

        # Cold pass: every endpoint answers a schema-valid envelope.
        checks = [
            ("GET", "/v1/health", None, "health"),
            ("GET", "/v1/scenarios", None, "scenario-list"),
            ("POST", "/v1/price",
             {"scenario": "paper-default", "mechanism": "uniform"},
             "pricing-response"),
            ("POST", "/v1/equilibrium", {"setup": "setup1"},
             "equilibrium-response"),
            ("POST", "/v1/scenarios/paper-default/run",
             {"mechanisms": ["proposed", "random"]}, "scenario-run"),
        ]
        docs = {}
        for method, path, body, kind in checks:
            status, doc = call(port, method, path, body)
            assert status == 200, f"{method} {path} -> {status}: {doc}"
            schemas.check_envelope(doc, kind)
            if doc.get("trace") is not None:
                check_trace(doc["trace"])
            docs[path] = doc
        for path in ("/v1/price", "/v1/equilibrium"):
            assert docs[path]["population_fingerprint"], (
                f"{path} response carries no population fingerprint"
            )

        # Best-response echoes the equilibrium prices back to q*.
        prices = docs["/v1/equilibrium"]["result"]["equilibrium"]["prices"]
        status, doc = call(
            port, "POST", "/v1/best-response",
            {"setup": "setup1", "prices": prices},
        )
        assert status == 200, f"best-response -> {status}: {doc}"
        schemas.check_envelope(doc, "best-response")

        # Warm repeat: cache hit, no solve stage, identical result bytes.
        status, warm = call(
            port, "POST", "/v1/price",
            {"scenario": "paper-default", "mechanism": "uniform"},
        )
        assert status == 200
        assert warm["trace"]["cache"] == "hit", warm["trace"]
        assert "solve" not in warm["trace"]["stages"], warm["trace"]
        assert schemas.result_bytes(warm) == schemas.result_bytes(
            docs["/v1/price"]
        ), "warm response diverged from the cold one"

        # Malformed requests: 4xx error envelopes, server stays up.
        for method, path, body, expected in [
            ("POST", "/v1/price", {"scenario": "nope"}, 404),
            ("POST", "/v1/price", {"mecanism": "uniform"}, 400),
            ("POST", "/v1/equilibrium",
             {"setup": "setup1", "method": "bogus"}, 400),
            ("POST", "/v1/health", None, 405),
            ("GET", "/v1/nope", None, 404),
        ]:
            status, doc = call(port, method, path, body)
            assert status == expected, (
                f"{method} {path} -> {status}, wanted {expected}"
            )
            schemas.check_envelope(doc, "error")

        # The metrics endpoint reports the contract-conforming snapshot.
        status, doc = call(port, "GET", "/v1/metrics")
        assert status == 200
        schemas.check_envelope(doc, "metrics-snapshot")
        check_metrics_snapshot(doc["result"])
        assert doc["result"]["cache"]["hits"] >= 1, doc["result"]["cache"]

        # SIGINT: the quiet-shutdown contract extends to serve.
        server.send_signal(signal.SIGINT)
        code = server.wait(timeout=60)
        stderr = server.stderr.read().decode()
        assert code == 0, f"serve exited {code} on SIGINT; stderr: {stderr}"
        assert "Traceback" not in stderr, stderr
    finally:
        if server.poll() is None:
            server.kill()
            server.wait(timeout=30)
    print("serve smoke: all checks passed")
    return 0


if __name__ == "__main__":
    start = time.time()
    code = main()
    print(f"({time.time() - start:.1f}s)")
    sys.exit(code)
